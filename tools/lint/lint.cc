#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace progidx {
namespace lint {
namespace {

// ---------------------------------------------------------------------
// Lexical pass: split every line into a code view (comments removed,
// string/char-literal contents blanked so banned tokens inside literals
// never fire) and a comment view (where NOLINT-PROGIDX suppressions
// live). Block comments and raw strings carry state across lines.

struct LineView {
  std::string code;
  std::string comment;
};

bool IsIdent(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<LineView> SplitViews(const std::string& contents) {
  std::vector<LineView> views;
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" for the active raw string
  LineView cur;
  size_t i = 0;
  const size_t n = contents.size();
  auto flush_line = [&]() {
    views.push_back(cur);
    cur = LineView{};
  };
  while (i < n) {
    const char c = contents[i];
    if (c == '\n') {
      // Line comments end at the newline; every other state survives it
      // (block comments, raw strings) or is malformed anyway (plain
      // string/char literals — treat the newline as terminating them so
      // a typo cannot swallow the rest of the file).
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      i++;
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && contents[i + 1] == '/') {
          // Line comment: capture to end of line as comment text.
          size_t j = i;
          while (j < n && contents[j] != '\n') {
            cur.comment.push_back(contents[j]);
            j++;
          }
          i = j;
          continue;
        }
        if (c == '/' && i + 1 < n && contents[i + 1] == '*') {
          state = State::kBlockComment;
          cur.code.append("  ");
          i += 2;
          continue;
        }
        if (c == 'R' && i + 1 < n && contents[i + 1] == '"' &&
            (i == 0 || !IsIdent(contents[i - 1]))) {
          // Raw string R"delim( ... )delim" — blank the whole payload.
          size_t j = i + 2;
          std::string delim;
          while (j < n && contents[j] != '(' && contents[j] != '\n' &&
                 delim.size() < 16) {
            delim.push_back(contents[j]);
            j++;
          }
          if (j < n && contents[j] == '(') {
            state = State::kRawString;
            raw_terminator = ")" + delim + "\"";
            cur.code.append("R\"");
            i = j + 1;
            continue;
          }
          // Not actually a raw string; fall through as ordinary code.
        }
        if (c == '"') {
          state = State::kString;
          cur.code.push_back('"');
          i++;
          continue;
        }
        if (c == '\'') {
          state = State::kChar;
          cur.code.push_back('\'');
          i++;
          continue;
        }
        cur.code.push_back(c);
        i++;
        continue;
      }
      case State::kBlockComment: {
        if (c == '*' && i + 1 < n && contents[i + 1] == '/') {
          state = State::kCode;
          i += 2;
          continue;
        }
        cur.comment.push_back(c);
        i++;
        continue;
      }
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < n) {
          cur.code.push_back(' ');
          cur.code.push_back(' ');
          i += 2;
          continue;
        }
        if (c == quote) {
          state = State::kCode;
          cur.code.push_back(quote);
          i++;
          continue;
        }
        cur.code.push_back(' ');
        i++;
        continue;
      }
      case State::kRawString: {
        if (contents.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          state = State::kCode;
          cur.code.push_back('"');
          i += raw_terminator.size();
          continue;
        }
        cur.code.push_back(' ');
        i++;
        continue;
      }
    }
  }
  flush_line();
  return views;
}

// ---------------------------------------------------------------------
// Matching helpers over the blanked code view.

/// True when `tok` occurs with non-identifier characters on both sides.
bool HasToken(const std::string& code, const std::string& tok) {
  size_t pos = 0;
  while ((pos = code.find(tok, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdent(code[pos - 1]);
    const size_t end = pos + tok.size();
    const bool right_ok = end >= code.size() || !IsIdent(code[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Number of call-shaped occurrences of `name`: token boundary on the
/// left, optional whitespace then '(' on the right. When `member_only`
/// is set the name must additionally be reached through '.' or '->'
/// (used for short method names like Next that would otherwise collide
/// with free functions).
size_t CountCalls(const std::string& code, const std::string& name,
                  bool member_only) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdent(code[pos - 1]);
    size_t end = pos + name.size();
    while (end < code.size() &&
           std::isspace(static_cast<unsigned char>(code[end])) != 0) {
      end++;
    }
    const bool is_call = end < code.size() && code[end] == '(';
    bool via_member = false;
    if (pos >= 1 && code[pos - 1] == '.') via_member = true;
    if (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>') {
      via_member = true;
    }
    if (left_ok && is_call && (!member_only || via_member)) count++;
    pos += 1;
  }
  return count;
}

bool HasCall(const std::string& code, const std::string& name) {
  return CountCalls(code, name, /*member_only=*/false) > 0;
}

bool HasMemberCall(const std::string& code, const std::string& name) {
  return CountCalls(code, name, /*member_only=*/true) > 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool InAny(const std::string& path, std::initializer_list<const char*> dirs) {
  for (const char* d : dirs) {
    if (StartsWith(path, d)) return true;
  }
  return false;
}

std::string Trimmed(const std::string& s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    b++;
  }
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    e--;
  }
  return s.substr(b, e - b);
}

// ---------------------------------------------------------------------
// Rules. Each rule sees one blanked code line plus the file path; the
// unordered-iter rule additionally gets the set of identifiers the file
// declares with unordered container types.

constexpr char kGetenvRule[] = "getenv";
constexpr char kRawRngRule[] = "raw-rng";
constexpr char kUnorderedIterRule[] = "unordered-iter";
constexpr char kLocalStaticRule[] = "local-static";
constexpr char kNakedThreadRule[] = "naked-thread";
constexpr char kAtomicRmwObsRule[] = "atomic-rmw-obs";
constexpr char kEvalOrderRule[] = "eval-order";
constexpr char kWallClockRule[] = "wall-clock";
constexpr char kBadSuppressionRule[] = "bad-suppression";

const std::vector<RuleInfo>& RuleTable() {
  static const std::vector<RuleInfo> kRules = {
      {kGetenvRule,
       "getenv outside src/common/env.* — route environment reads through "
       "progidx::env so every seam is audited in one place"},
      {kRawRngRule,
       "rand()/srand()/std::random_device/<random> engines outside "
       "src/common/rng.h — use progidx::Rng for cross-stdlib reproducibility"},
      {kUnorderedIterRule,
       "iterating an unordered container in src/core, src/exec, or "
       "src/serve — iteration order is implementation-defined, so anything "
       "built from it is nondeterministic"},
      {kLocalStaticRule,
       "mutable static state in src/ — races and hides cross-query state; "
       "use env::WarnOnce, const/constexpr, or thread_local scratch"},
      {kNakedThreadRule,
       "std::thread outside src/parallel + src/serve — spawn through "
       "parallel::ThreadPool so lane counts stay seamed (PROGIDX_THREADS) "
       "and deterministic"},
      {kAtomicRmwObsRule,
       "atomic read-modify-write in src/obs — metric shards are "
       "single-writer by design; RMW reintroduces the cross-core "
       "contention the sharding exists to avoid"},
      {kEvalOrderRule,
       "two side-effecting helper calls in one expression — C++ function "
       "arguments are unsequenced, so results depend on evaluation order "
       "(the PR 5 LSD candidate-mask bug); split into statements"},
      {kWallClockRule,
       "wall-clock time in budget/persist/serve paths — replay must be "
       "bit-identical across runs; use common/timer.h (steady_clock) or "
       "recorded values"},
      {kBadSuppressionRule,
       "NOLINT-PROGIDX comment naming an unknown rule — stale or "
       "misspelled suppressions must not rot silently"},
  };
  return kRules;
}

/// Side-effecting helpers for the eval-order rule: calling any two of
/// these (or one of them twice) in a single expression reproduces the
/// unspecified-evaluation-order class that corrupted the LSD candidate
/// masks — each call mutates state (RNG words, budget counters) or
/// writes out-params that the same full-expression then reads.
struct FlaggedHelper {
  const char* name;
  bool member_only;
};
constexpr FlaggedHelper kEvalOrderHelpers[] = {
    {"CandidateDigits", false}, {"NextBounded", false},
    {"NextInRange", false},     {"NextDouble", false},
    {"NextGaussian", false},    {"SplitMix", false},
    {"DeltaForQuery", false},   {"Next", true},
};

void CheckGetenv(const std::string& path, const std::string& code,
                 std::vector<Finding>* out, size_t line) {
  if (StartsWith(path, "src/common/env.")) return;
  if (HasToken(code, "getenv") || HasToken(code, "secure_getenv")) {
    out->push_back({path, line, kGetenvRule,
                    "call env::Get (src/common/env.h) instead of getenv so "
                    "every environment seam is audited in one place"});
  }
}

void CheckRawRng(const std::string& path, const std::string& code,
                 std::vector<Finding>* out, size_t line) {
  if (StartsWith(path, "src/common/rng.h")) return;
  const char* hit = nullptr;
  if (HasCall(code, "rand") || HasCall(code, "srand")) hit = "rand()/srand()";
  if (HasToken(code, "random_device")) hit = "std::random_device";
  if (HasToken(code, "mt19937") || HasToken(code, "mt19937_64") ||
      HasToken(code, "minstd_rand") || HasToken(code, "minstd_rand0") ||
      HasToken(code, "default_random_engine") || HasToken(code, "ranlux24") ||
      HasToken(code, "ranlux48")) {
    hit = "a <random> engine";
  }
  if (hit != nullptr) {
    out->push_back(
        {path, line, kRawRngRule,
         std::string(hit) +
             " is not reproducible across runs or standard libraries; use "
             "progidx::Rng (src/common/rng.h) with an explicit seed"});
  }
}

/// Identifiers this file declares with std::unordered_{map,set,multimap,
/// multiset} types, collected in a pre-pass so the iteration check can
/// flag range-fors and .begin() walks over them by name.
std::vector<std::string> CollectUnorderedNames(
    const std::vector<LineView>& views) {
  std::vector<std::string> names;
  for (const LineView& v : views) {
    const std::string& code = v.code;
    size_t pos = 0;
    while ((pos = code.find("unordered_", pos)) != std::string::npos) {
      if (pos > 0 && IsIdent(code[pos - 1])) {
        pos++;
        continue;
      }
      size_t j = pos;
      while (j < code.size() && IsIdent(code[j])) j++;
      // Template argument list: balance angle brackets on this line.
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j])) != 0) {
        j++;
      }
      if (j >= code.size() || code[j] != '<') {
        pos++;
        continue;
      }
      int depth = 0;
      while (j < code.size()) {
        if (code[j] == '<') depth++;
        if (code[j] == '>') {
          depth--;
          if (depth == 0) {
            j++;
            break;
          }
        }
        j++;
      }
      if (depth != 0) break;  // declaration continues on the next line
      while (j < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[j])) != 0 ||
              code[j] == '&' || code[j] == '*')) {
        j++;
      }
      std::string name;
      while (j < code.size() && IsIdent(code[j])) {
        name.push_back(code[j]);
        j++;
      }
      if (!name.empty()) names.push_back(name);
      pos = j;
    }
  }
  return names;
}

void CheckUnorderedIter(const std::string& path, const std::string& code,
                        const std::vector<std::string>& unordered_names,
                        std::vector<Finding>* out, size_t line) {
  if (!InAny(path, {"src/core/", "src/exec/", "src/serve/"})) return;
  for (const std::string& name : unordered_names) {
    bool iterates = false;
    // Range-for over the container: `for (... : name)`.
    const size_t for_pos = code.find("for");
    if (for_pos != std::string::npos && HasToken(code, "for")) {
      const size_t colon = code.find(':', for_pos);
      if (colon != std::string::npos) {
        const std::string range = code.substr(colon + 1);
        if (HasToken(range, name)) iterates = true;
      }
    }
    // Explicit iterator walks. `.end()` alone is not flagged — the
    // `find(k) != container.end()` lookup idiom is order-independent.
    for (const char* method : {"begin", "cbegin", "rbegin"}) {
      size_t p = code.find(name);
      while (p != std::string::npos) {
        const size_t after = p + name.size();
        const std::string rest = code.substr(after);
        const std::string dot = "." + std::string(method);
        const std::string arrow = "->" + std::string(method);
        if (StartsWith(rest, dot + "(") || StartsWith(rest, arrow + "(")) {
          iterates = true;
        }
        p = code.find(name, p + 1);
      }
    }
    if (iterates) {
      out->push_back(
          {path, line, kUnorderedIterRule,
           "iterating unordered container '" + name +
               "' — the order is implementation-defined, so results or "
               "state built from this walk are nondeterministic; iterate "
               "a sorted copy or switch to an ordered container"});
      return;
    }
  }
}

void CheckLocalStatic(const std::string& path, const std::string& code,
                      std::vector<Finding>* out, size_t line) {
  if (!StartsWith(path, "src/")) return;
  // The warn-once gate itself owns the process-wide warned set.
  if (StartsWith(path, "src/common/env.cc")) return;
  if (!HasToken(code, "static")) return;
  if (HasToken(code, "static_assert") && code.find("static ") == std::string::npos) {
    return;
  }
  const size_t pos = code.find("static");
  const std::string decl = Trimmed(code.substr(pos));
  if (!StartsWith(decl, "static ")) return;
  // Immutable or per-thread state is fine: constants fold away,
  // thread_local scratch is single-owner, and `T* const x = new T`
  // leak-singletons are immutable after their (thread-safe) magic-static
  // initialization.
  const size_t eq = decl.find('=');
  const std::string head = eq == std::string::npos ? decl : decl.substr(0, eq);
  if (HasToken(head, "const") || HasToken(head, "constexpr") ||
      HasToken(head, "thread_local")) {
    return;
  }
  // Static member/free function declarations and definitions: a '('
  // opening an argument list before any initializer.
  const size_t paren = decl.find('(');
  if (paren != std::string::npos &&
      (eq == std::string::npos || paren < eq)) {
    return;
  }
  out->push_back(
      {path, line, kLocalStaticRule,
       "mutable static state — this is the racing `static bool warned` "
       "class; use env::WarnOnce for warn-once gates, const/constexpr "
       "for tables, or `static thread_local` for per-thread scratch"});
}

void CheckNakedThread(const std::string& path, const std::string& code,
                      std::vector<Finding>* out, size_t line) {
  if (!StartsWith(path, "src/")) return;
  if (InAny(path, {"src/parallel/", "src/serve/"})) return;
  if (HasToken(code, "std::thread") || HasToken(code, "std::jthread")) {
    out->push_back(
        {path, line, kNakedThreadRule,
         "naked std::thread — spawn through parallel::ThreadPool (or the "
         "serve layer) so concurrency honors the PROGIDX_THREADS seam and "
         "the determinism parity lanes cover it"});
  }
}

void CheckAtomicRmwObs(const std::string& path, const std::string& code,
                       std::vector<Finding>* out, size_t line) {
  if (!StartsWith(path, "src/obs/")) return;
  const char* rmw[] = {"fetch_add",        "fetch_sub",
                       "fetch_or",         "fetch_and",
                       "fetch_xor",        "compare_exchange_weak",
                       "compare_exchange_strong"};
  bool hit = false;
  for (const char* m : rmw) {
    if (HasCall(code, m)) hit = true;
  }
  // Plain std::exchange is fine; only the atomic member form is RMW.
  if (HasMemberCall(code, "exchange")) hit = true;
  if (hit) {
    out->push_back(
        {path, line, kAtomicRmwObsRule,
         "atomic read-modify-write in the telemetry layer — hot-path "
         "shards are single-writer (plain relaxed load+store bumps, "
         "docs/observability.md); RMW reintroduces cross-core contention"});
  }
}

void CheckEvalOrder(const std::string& path, const std::string& code,
                    std::vector<Finding>* out, size_t line) {
  if (!StartsWith(path, "src/")) return;
  size_t calls = 0;
  for (const FlaggedHelper& h : kEvalOrderHelpers) {
    calls += CountCalls(code, h.name, h.member_only);
  }
  if (calls >= 2) {
    out->push_back(
        {path, line, kEvalOrderRule,
         "multiple side-effecting helper calls in one expression — "
         "argument evaluation is unsequenced (the PR 5 LSD candidate-mask "
         "bug); give each call its own statement"});
  }
}

void CheckWallClock(const std::string& path, const std::string& code,
                    std::vector<Finding>* out, size_t line) {
  if (!InAny(path, {"src/core/budget.", "src/persist/", "src/serve/"})) {
    return;
  }
  const char* hit = nullptr;
  if (HasToken(code, "system_clock")) hit = "std::chrono::system_clock";
  if (HasCall(code, "time")) hit = "time()";
  if (HasCall(code, "gettimeofday")) hit = "gettimeofday()";
  if (HasCall(code, "clock_gettime")) hit = "clock_gettime()";
  if (HasCall(code, "localtime") || HasCall(code, "gmtime")) {
    hit = "calendar-time conversion";
  }
  if (hit != nullptr) {
    out->push_back(
        {path, line, kWallClockRule,
         std::string(hit) +
             " in a budget/replay path — recovery replays the admitted "
             "log bit-identically, and wall-clock reads differ per run; "
             "use common/timer.h (steady_clock) or a recorded value"});
  }
}

// ---------------------------------------------------------------------
// Suppressions: `// NOLINT-PROGIDX(rule[,rule...])` or `(*)` on the
// offending line, or the -NEXTLINE form on the line above.

struct Suppression {
  std::vector<std::string> rules;  // "*" means all
  bool next_line = false;
};

std::vector<Suppression> ParseSuppressions(const std::string& comment) {
  std::vector<Suppression> result;
  const std::string tag = "NOLINT-PROGIDX";
  size_t pos = 0;
  while ((pos = comment.find(tag, pos)) != std::string::npos) {
    size_t j = pos + tag.size();
    Suppression s;
    const std::string next = "-NEXTLINE";
    if (comment.compare(j, next.size(), next) == 0) {
      s.next_line = true;
      j += next.size();
    }
    if (j < comment.size() && comment[j] == '(') {
      const size_t close = comment.find(')', j);
      if (close != std::string::npos) {
        std::string inside = comment.substr(j + 1, close - j - 1);
        std::stringstream ss(inside);
        std::string item;
        while (std::getline(ss, item, ',')) {
          const std::string t = Trimmed(item);
          // Real rule names are kebab-case (or the `*` wildcard);
          // anything else — `<rule>` placeholders in documentation
          // comments about the syntax — is not a suppression.
          const bool name_like =
              !t.empty() &&
              std::all_of(t.begin(), t.end(), [](char c) {
                return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                       c == '-' || c == '*';
              });
          if (name_like) s.rules.push_back(t);
        }
      }
    }
    result.push_back(s);
    pos = j;
  }
  return result;
}

bool Suppresses(const std::vector<std::string>& rules,
                const std::string& rule) {
  for (const std::string& r : rules) {
    if (r == "*" || r == rule) return true;
  }
  return false;
}

bool KnownRule(const std::string& name) {
  for (const RuleInfo& r : RuleTable()) {
    if (name == r.name) return true;
  }
  return false;
}

}  // namespace

const std::vector<RuleInfo>& Rules() { return RuleTable(); }

std::vector<Finding> ScanFile(const std::string& path,
                              const std::string& contents) {
  const std::vector<LineView> views = SplitViews(contents);
  const std::vector<std::string> unordered_names =
      CollectUnorderedNames(views);

  // Per-line active suppressions (same-line + carried -NEXTLINE).
  std::vector<std::vector<std::string>> active(views.size());
  std::vector<Finding> findings;
  for (size_t i = 0; i < views.size(); i++) {
    for (const Suppression& s : ParseSuppressions(views[i].comment)) {
      const size_t target = s.next_line ? i + 1 : i;
      if (target < views.size()) {
        active[target].insert(active[target].end(), s.rules.begin(),
                              s.rules.end());
      }
      for (const std::string& r : s.rules) {
        if (r != "*" && !KnownRule(r)) {
          findings.push_back(
              {path, i + 1, kBadSuppressionRule,
               "suppression names unknown rule '" + r +
                   "' — see determinism_lint --list for valid names"});
        }
      }
    }
  }

  for (size_t i = 0; i < views.size(); i++) {
    const std::string& code = views[i].code;
    if (code.empty()) continue;
    std::vector<Finding> line_findings;
    const size_t line = i + 1;
    CheckGetenv(path, code, &line_findings, line);
    CheckRawRng(path, code, &line_findings, line);
    CheckUnorderedIter(path, code, unordered_names, &line_findings, line);
    CheckLocalStatic(path, code, &line_findings, line);
    CheckNakedThread(path, code, &line_findings, line);
    CheckAtomicRmwObs(path, code, &line_findings, line);
    CheckEvalOrder(path, code, &line_findings, line);
    CheckWallClock(path, code, &line_findings, line);
    for (Finding& f : line_findings) {
      if (!Suppresses(active[i], f.rule)) {
        findings.push_back(std::move(f));
      }
    }
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> ScanTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const char* dir : {"src", "tests", "bench", "tools", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cc" && ext != ".h" && ext != ".cpp" && ext != ".hpp") {
        continue;
      }
      files.push_back(fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const std::string& rel : files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::vector<Finding> file_findings = ScanFile(rel, buf.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace lint
}  // namespace progidx
