// Resolves a kernel tier by name and reports whether this machine and
// build can actually run it. Exit codes: 0 = tier resolves, 77 = it
// does not (the ctest convention for "skip this lane"), 2 = usage.
// Also prints the machine's parallel geometry (hardware cores and the
// lane count the thread pool will field after PROGIDX_THREADS).
//
//   $ kernel_tier_probe avx512 && PROGIDX_FORCE_KERNEL=avx512 ./progidx_tests

#include <cstdio>
#include <cstring>
#include <thread>

#include "kernels/kernels.h"
#include "parallel/thread_pool.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: kernel_tier_probe <scalar|sse2|avx2|avx512>\n");
    return 2;
  }
  std::printf("cores: %u detected, %zu pool lanes\n",
              std::thread::hardware_concurrency(),
              progidx::parallel::DefaultLanes());
  const progidx::kernels::KernelOps& ops =
      progidx::kernels::ResolveKernels(argv[1], /*force_scalar=*/false);
  if (std::strcmp(ops.name, argv[1]) == 0) {
    std::printf("%s: supported\n", argv[1]);
    return 0;
  }
  std::printf("%s: unsupported on this CPU/build (resolves to %s)\n", argv[1],
              ops.name);
  return 77;
}
