// Micro-benchmarks (google-benchmark) for the kernels behind the cost
// model's Table 1 constants: scan kernels, crack kernels, bucket
// appends, AVL inserts, and B+-tree lookups — plus scalar-tier vs
// dispatched-tier comparisons for the kernel layer.
//
// On startup this binary also runs a short hand-timed throughput sweep
// of the kernel layer and writes BENCH_kernels.json (scalar vs
// dispatched GB/s and the speedup per kernel; per-tier rows; per
// thread-count rows for the parallel composite primitives; and the
// <= 64-bucket scatter shape study), so successive PRs leave a perf
// trajectory behind.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include <thread>

#include "baselines/avl_tree.h"
#include "baselines/cracking_kernels.h"
#include "bench/json_store.h"
#include "btree/btree.h"
#include "common/predication.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kernels/kernels.h"
#include "kernels/kernels_internal.h"
#include "parallel/primitives.h"
#include "storage/bucket_chain.h"

namespace progidx {
namespace {

std::vector<value_t> RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> data(n);
  for (value_t& v : data) {
    v = static_cast<value_t>(rng.NextBounded(static_cast<uint64_t>(n)));
  }
  return data;
}

void BM_PredicatedRangeSum(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> data = RandomData(n, 1);
  const RangeQuery q{static_cast<value_t>(n / 4),
                     static_cast<value_t>(3 * n / 4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PredicatedRangeSum(data.data(), n, q));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_PredicatedRangeSum)->Arg(1 << 16)->Arg(1 << 20);

void BM_BranchedRangeSum(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> data = RandomData(n, 1);
  const RangeQuery q{static_cast<value_t>(n / 4),
                     static_cast<value_t>(3 * n / 4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BranchedRangeSum(data.data(), n, q));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_BranchedRangeSum)->Arg(1 << 16)->Arg(1 << 20);

// Scalar tier vs dispatched tier, head to head on the same input.
void BM_RangeSumScalarTier(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> data = RandomData(n, 1);
  const RangeQuery q{static_cast<value_t>(n / 4),
                     static_cast<value_t>(3 * n / 4)};
  const kernels::KernelOps& ops = kernels::ScalarKernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.range_sum_predicated(data.data(), n, q));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_RangeSumScalarTier)->Arg(1 << 16)->Arg(1 << 20);

void BM_RangeSumDispatchedTier(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> data = RandomData(n, 1);
  const RangeQuery q{static_cast<value_t>(n / 4),
                     static_cast<value_t>(3 * n / 4)};
  const kernels::KernelOps& ops = kernels::Dispatch();
  state.SetLabel(ops.name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.range_sum_predicated(data.data(), n, q));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_RangeSumDispatchedTier)->Arg(1 << 16)->Arg(1 << 20);

void BM_PartitionTwoSidedScalarTier(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> src = RandomData(n, 2);
  std::vector<value_t> dst(n);
  const kernels::KernelOps& ops = kernels::ScalarKernels();
  for (auto _ : state) {
    size_t lo = 0;
    int64_t hi = static_cast<int64_t>(n) - 1;
    ops.partition_two_sided(src.data(), n, static_cast<value_t>(n / 2),
                            dst.data(), &lo, &hi);
    benchmark::DoNotOptimize(lo);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_PartitionTwoSidedScalarTier)->Arg(1 << 16)->Arg(1 << 20);

void BM_PartitionTwoSidedDispatchedTier(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> src = RandomData(n, 2);
  std::vector<value_t> dst(n);
  const kernels::KernelOps& ops = kernels::Dispatch();
  state.SetLabel(ops.name);
  for (auto _ : state) {
    size_t lo = 0;
    int64_t hi = static_cast<int64_t>(n) - 1;
    ops.partition_two_sided(src.data(), n, static_cast<value_t>(n / 2),
                            dst.data(), &lo, &hi);
    benchmark::DoNotOptimize(lo);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_PartitionTwoSidedDispatchedTier)->Arg(1 << 16)->Arg(1 << 20);

void BM_RadixScatterDispatchedTier(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> src = RandomData(n, 3);
  std::vector<value_t> dst(n);
  const kernels::KernelOps& ops = kernels::Dispatch();
  state.SetLabel(ops.name);
  for (auto _ : state) {
    uint64_t counts[64] = {};
    ops.radix_histogram(src.data(), n, 0, 0, 63u, counts);
    size_t offsets[64];
    size_t acc = 0;
    for (int d = 0; d < 64; d++) {
      offsets[d] = acc;
      acc += static_cast<size_t>(counts[d]);
    }
    ops.radix_scatter(src.data(), n, 0, 0, 63u, dst.data(), offsets);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_RadixScatterDispatchedTier)->Arg(1 << 16)->Arg(1 << 20);

void BM_CrackInPlaceScalarTier(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> original = RandomData(n, 2);
  std::vector<value_t> data = original;
  const kernels::KernelOps& ops = kernels::ScalarKernels();
  for (auto _ : state) {
    state.PauseTiming();
    data = original;
    state.ResumeTiming();
    size_t lo = 0;
    size_t hi = n - 1;
    bool done = false;
    ops.crack_in_place(data.data(), &lo, &hi, static_cast<value_t>(n / 2),
                       std::numeric_limits<size_t>::max(), &done);
    benchmark::DoNotOptimize(lo);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CrackInPlaceScalarTier)->Arg(1 << 16)->Arg(1 << 20);

void BM_CrackInPlaceDispatchedTier(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> original = RandomData(n, 2);
  std::vector<value_t> data = original;
  const kernels::KernelOps& ops = kernels::Dispatch();
  state.SetLabel(ops.name);
  for (auto _ : state) {
    state.PauseTiming();
    data = original;
    state.ResumeTiming();
    size_t lo = 0;
    size_t hi = n - 1;
    bool done = false;
    ops.crack_in_place(data.data(), &lo, &hi, static_cast<value_t>(n / 2),
                       std::numeric_limits<size_t>::max(), &done);
    benchmark::DoNotOptimize(lo);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CrackInPlaceDispatchedTier)->Arg(1 << 16)->Arg(1 << 20);

void BM_CrackInTwoPredicated(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> original = RandomData(n, 2);
  std::vector<value_t> data = original;
  for (auto _ : state) {
    state.PauseTiming();
    data = original;
    state.ResumeTiming();
    benchmark::DoNotOptimize(CrackInTwoPredicated(
        data.data(), 0, n, static_cast<value_t>(n / 2)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CrackInTwoPredicated)->Arg(1 << 16)->Arg(1 << 20);

void BM_CrackInTwoBranched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> original = RandomData(n, 2);
  std::vector<value_t> data = original;
  for (auto _ : state) {
    state.PauseTiming();
    data = original;
    state.ResumeTiming();
    benchmark::DoNotOptimize(CrackInTwoBranched(
        data.data(), 0, n, static_cast<value_t>(n / 2)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CrackInTwoBranched)->Arg(1 << 16)->Arg(1 << 20);

void BM_BucketChainAppend(benchmark::State& state) {
  const size_t n = 1 << 16;
  const std::vector<value_t> data = RandomData(n, 3);
  for (auto _ : state) {
    BucketChain chain(static_cast<size_t>(state.range(0)));
    for (const value_t v : data) chain.Append(v);
    benchmark::DoNotOptimize(chain.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_BucketChainAppend)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ScatterToChains(benchmark::State& state) {
  const size_t n = 1 << 16;
  const std::vector<value_t> data = RandomData(n, 3);
  for (auto _ : state) {
    std::vector<BucketChain> chains;
    for (size_t i = 0; i < 64; i++) {
      chains.emplace_back(static_cast<size_t>(state.range(0)));
    }
    ScatterToChains(data.data(), n, 0, 10, 63u, chains.data());
    benchmark::DoNotOptimize(chains[0].size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ScatterToChains)->Arg(256)->Arg(4096)->Arg(65536);

void BM_AvlInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> data = RandomData(n, 4);
  for (auto _ : state) {
    AvlTree tree;
    for (size_t i = 0; i < n; i++) {
      tree.Insert(data[i], static_cast<size_t>(data[i]));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_AvlInsert)->Arg(1 << 10)->Arg(1 << 14);

void BM_BTreeLookup(benchmark::State& state) {
  const size_t n = 1 << 20;
  std::vector<value_t> data = RandomData(n, 5);
  std::sort(data.begin(), data.end());
  BPlusTree tree(data.data(), n, static_cast<size_t>(state.range(0)));
  tree.BuildAll();
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.LowerBound(static_cast<value_t>(rng.NextBounded(n))));
  }
}
BENCHMARK(BM_BTreeLookup)->Arg(16)->Arg(64)->Arg(256);

void BM_BinarySearchBaseline(benchmark::State& state) {
  const size_t n = 1 << 20;
  std::vector<value_t> data = RandomData(n, 5);
  std::sort(data.begin(), data.end());
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        std::lower_bound(data.begin(), data.end(),
                         static_cast<value_t>(rng.NextBounded(n))));
  }
}
BENCHMARK(BM_BinarySearchBaseline);

// --- BENCH_kernels.json: per-tier throughput sweep ---------------------

volatile int64_t throughput_sink = 0;

/// One timed invocation of `fn`; `prepare` runs outside the timed
/// region. Reps are interleaved *across tiers* by the caller (tier A
/// rep 1, tier B rep 1, ..., tier A rep 2, ...): the shared container
/// drifts by tens of percent over seconds, and measuring each tier in
/// its own contiguous block would fold that drift into the speedup
/// ratios.
template <typename Prepare, typename Fn>
double MeasureSecsOnce(Prepare&& prepare, Fn&& fn) {
  prepare();
  Timer timer;
  fn();
  return timer.ElapsedSeconds();
}

/// Every tier compiled into this binary that this CPU can run, scalar
/// first (the reference everything is compared against).
std::vector<const kernels::KernelOps*> SweepTiers() {
  std::vector<const kernels::KernelOps*> tiers;
  tiers.push_back(&kernels::ScalarKernels());
  for (const char* name : {"sse2", "avx2", "avx512"}) {
    const kernels::KernelOps& ops = kernels::ResolveKernels(name, false);
    if (std::strcmp(ops.name, name) == 0) tiers.push_back(&ops);
  }
  return tiers;
}

void WriteKernelThroughputJson(const char* path) {
  constexpr size_t kN = 1 << 22;  // 32 MiB: past LLC, stream from DRAM
  constexpr size_t kReps = 5;
  const std::vector<value_t> data = RandomData(kN, 17);
  const RangeQuery q{static_cast<value_t>(kN / 4),
                     static_cast<value_t>(3 * kN / 4)};
  const std::vector<const kernels::KernelOps*> tiers = SweepTiers();
  const kernels::KernelOps& active = kernels::Dispatch();

  std::vector<value_t> dst(kN);
  std::vector<value_t> work(kN);
  auto nop = [] {};
  auto range_sum = [&](const kernels::KernelOps& ops) {
    return MeasureSecsOnce(nop, [&] {
      throughput_sink = ops.range_sum_predicated(data.data(), kN, q).sum;
    });
  };
  auto partition = [&](const kernels::KernelOps& ops) {
    return MeasureSecsOnce(nop, [&] {
      size_t lo = 0;
      int64_t hi = static_cast<int64_t>(kN) - 1;
      ops.partition_two_sided(data.data(), kN, static_cast<value_t>(kN / 2),
                              dst.data(), &lo, &hi);
      throughput_sink = static_cast<int64_t>(lo);
    });
  };
  // The budgeted in-place crack, run to completion in one slice (the
  // refinement-phase hot loop). Re-copied from the source data before
  // every rep (outside the timer) so each tier cracks the same
  // unpartitioned input.
  auto crack = [&](const kernels::KernelOps& ops) {
    return MeasureSecsOnce(
        [&] { std::memcpy(work.data(), data.data(), kN * sizeof(value_t)); },
        [&] {
          size_t lo = 0;
          size_t hi = kN - 1;
          bool done = false;
          ops.crack_in_place(work.data(), &lo, &hi,
                             static_cast<value_t>(kN / 2),
                             std::numeric_limits<size_t>::max(), &done);
          throughput_sink = static_cast<int64_t>(lo);
        });
  };
  // One 8-bit LSD pass (histogram + prefix sums + stable scatter) —
  // exactly RadixSortFlat's inner loop, 256 buckets.
  auto scatter = [&](const kernels::KernelOps& ops) {
    return MeasureSecsOnce(nop, [&] {
      uint64_t counts[256] = {};
      ops.radix_histogram(data.data(), kN, 0, 8, 255u, counts);
      size_t offsets[256];
      size_t acc = 0;
      for (int d = 0; d < 256; d++) {
        offsets[d] = acc;
        acc += static_cast<size_t>(counts[d]);
      }
      ops.radix_scatter(data.data(), kN, 0, 8, 255u, dst.data(), offsets);
      throughput_sink = dst[0];
    });
  };

  struct NamedKernel {
    const char* name;
    std::function<double(const kernels::KernelOps&)> measure_once;
  };
  const std::vector<NamedKernel> kernels_to_measure = {
      {"predicated_range_sum", range_sum},
      {"partition_two_sided", partition},
      {"crack_in_place", crack},
      {"radix_histogram_scatter", scatter},
  };

  struct ResultRow {
    const char* name;
    std::vector<double> tier_gbps;  // parallel to `tiers`
    double dispatched_gbps;
    std::vector<double> thread_gbps;  // parallel to kThreadCounts; empty =
                                      // no parallel counterpart
  };
  const double gbytes = static_cast<double>(kN) * sizeof(value_t) / 1e9;
  std::vector<ResultRow> rows;
  for (const NamedKernel& k : kernels_to_measure) {
    // Best-of-kReps with the reps interleaved across tiers (see
    // MeasureSecsOnce) so container speed drift cancels out of the
    // tier-vs-tier ratios.
    std::vector<double> tier_best(tiers.size(), 1e30);
    double active_best = 1e30;
    for (size_t r = 0; r < kReps; r++) {
      for (size_t t = 0; t < tiers.size(); t++) {
        tier_best[t] = std::min(tier_best[t], k.measure_once(*tiers[t]));
      }
      active_best = std::min(active_best, k.measure_once(active));
    }
    ResultRow row{k.name, {}, gbytes / active_best, {}};
    for (const double secs : tier_best) row.tier_gbps.push_back(gbytes / secs);
    rows.push_back(std::move(row));
  }

  // --- Per-thread-count rows: the parallel composite primitives over
  // the dispatched tier. T = 1 is the *serial* dispatched path (the
  // baseline the speedups in docs/parallel.md quote); higher counts
  // force the lane count, so the rows are meaningful on any machine
  // (an oversubscribed single-core container simply shows ~1x).
  const size_t kThreadCounts[] = {1, 2, 4, 8};
  auto rs_at = [&](size_t t) {
    return MeasureSecsOnce(nop, [&] {
      throughput_sink =
          parallel::RangeSumPredicatedWithLanes(data.data(), kN, q, t).sum;
    });
  };
  auto partition_at = [&](size_t t) {
    return MeasureSecsOnce(nop, [&] {
      if (t <= 1) {
        size_t lo = 0;
        int64_t hi = static_cast<int64_t>(kN) - 1;
        active.partition_two_sided(data.data(), kN,
                                   static_cast<value_t>(kN / 2), dst.data(),
                                   &lo, &hi);
        throughput_sink = static_cast<int64_t>(lo);
      } else {
        parallel::SetLanesForTesting(t);
        size_t lo = 0;
        int64_t hi = static_cast<int64_t>(kN) - 1;
        parallel::PartitionTwoSided(data.data(), kN,
                                    static_cast<value_t>(kN / 2), dst.data(),
                                    &lo, &hi);
        parallel::SetLanesForTesting(0);
        throughput_sink = static_cast<int64_t>(lo);
      }
    });
  };
  auto scatter_at = [&](size_t t) {
    return MeasureSecsOnce(nop, [&] {
      uint64_t counts[256] = {};
      parallel::RadixHistogram(data.data(), kN, 0, 8, 255u, counts, t);
      size_t offsets[256];
      size_t acc = 0;
      for (int d = 0; d < 256; d++) {
        offsets[d] = acc;
        acc += static_cast<size_t>(counts[d]);
      }
      parallel::RadixScatter(data.data(), kN, 0, 8, 255u, dst.data(),
                             offsets, t);
      throughput_sink = dst[0];
    });
  };
  struct ThreadSweep {
    const char* row_name;
    std::function<double(size_t)> measure_at;
  };
  const std::vector<ThreadSweep> sweeps = {
      {"predicated_range_sum", rs_at},
      {"partition_two_sided", partition_at},
      {"radix_histogram_scatter", scatter_at},
  };
  for (const ThreadSweep& sweep : sweeps) {
    std::vector<double> best(std::size(kThreadCounts), 1e30);
    for (size_t r = 0; r < kReps; r++) {
      for (size_t t = 0; t < std::size(kThreadCounts); t++) {
        best[t] = std::min(best[t], sweep.measure_at(kThreadCounts[t]));
      }
    }
    for (ResultRow& row : rows) {
      if (std::strcmp(row.name, sweep.row_name) != 0) continue;
      for (const double secs : best) row.thread_gbps.push_back(gbytes / secs);
    }
  }

  // --- <= 64-bucket scatter shape study (ROADMAP: "a vpconflictq-based
  // vectorized buffering loop might close that; measure before
  // believing"): the prefetching direct scatter (what the dispatched
  // kernel runs below kWcMinMask), the scalar WC buffering loop, and
  // the vpconflictq-vectorized WC loop, head to head at 64 buckets.
  struct Scatter64Shape {
    size_t elements;
    double direct_gbps = 0;
    double wc_gbps = 0;
    double conflict_gbps = 0;  // 0 = unavailable (build or CPU)
  };
  const kernels::detail::ScatterFn conflict_fn =
      kernels::detail::ConflictWcScatterAvx512();
  std::vector<Scatter64Shape> scatter64;
  for (const size_t sn : {size_t{1} << 16, kN}) {
    Scatter64Shape shape{sn, 0, 0, 0};
    uint64_t counts[64] = {};
    active.radix_histogram(data.data(), sn, 0, 0, 63u, counts);
    size_t base_offsets[64];
    size_t acc = 0;
    for (int d = 0; d < 64; d++) {
      base_offsets[d] = acc;
      acc += static_cast<size_t>(counts[d]);
    }
    size_t offsets[64];
    auto reset = [&] { std::memcpy(offsets, base_offsets, sizeof(offsets)); };
    auto direct_once = [&] {
      return MeasureSecsOnce(reset, [&] {
        active.radix_scatter(data.data(), sn, 0, 0, 63u, dst.data(), offsets);
        throughput_sink = dst[0];
      });
    };
    auto wc_once = [&] {
      return MeasureSecsOnce(reset, [&] {
        kernels::detail::ScatterWithWcBuffers(
            active.compute_digits, data.data(), sn, 0, 0, 63u, dst.data(),
            offsets, [](value_t* out, const value_t* buf, uint32_t cnt) {
              std::memcpy(out, buf, cnt * sizeof(value_t));
            });
        throughput_sink = dst[0];
      });
    };
    auto conflict_once = [&] {
      return MeasureSecsOnce(reset, [&] {
        conflict_fn(data.data(), sn, 0, 0, 63u, dst.data(), offsets);
        throughput_sink = dst[0];
      });
    };
    double direct_best = 1e30;
    double wc_best = 1e30;
    double conflict_best = 1e30;
    for (size_t r = 0; r < kReps; r++) {
      direct_best = std::min(direct_best, direct_once());
      wc_best = std::min(wc_best, wc_once());
      if (conflict_fn != nullptr) {
        conflict_best = std::min(conflict_best, conflict_once());
      }
    }
    const double shape_gb = static_cast<double>(sn) * sizeof(value_t) / 1e9;
    shape.direct_gbps = shape_gb / direct_best;
    shape.wc_gbps = shape_gb / wc_best;
    if (conflict_fn != nullptr) shape.conflict_gbps = shape_gb / conflict_best;
    scatter64.push_back(shape);
  }

  // Read-merge-write: this tool owns the kernel/tier/thread sections
  // and must preserve everything else (the `batch` rows merged by
  // bench/batch_throughput, and any future sections), whichever tool
  // ran first.
  std::vector<bench::JsonSection> sections = bench::ReadJsonSections(path);
  bench::UpsertJsonSection(&sections, "dispatched_tier",
                           std::string("\"") + active.name + "\"");
  bench::UpsertJsonSection(&sections, "elements", std::to_string(kN));
  bench::UpsertJsonSection(
      &sections, "hardware_threads",
      std::to_string(std::thread::hardware_concurrency()));
  std::string kernels_raw = "[\n";
  for (size_t i = 0; i < rows.size(); i++) {
    const ResultRow& row = rows[i];
    const double scalar_gbps = row.tier_gbps[0];
    bench::AppendF(&kernels_raw,
                   "    {\"name\": \"%s\", \"scalar_gbps\": %.3f, "
                   "\"dispatched_gbps\": %.3f, \"speedup\": %.3f,\n"
                   "     \"tiers\": {",
                   row.name, scalar_gbps, row.dispatched_gbps,
                   row.dispatched_gbps / scalar_gbps);
    for (size_t t = 0; t < tiers.size(); t++) {
      bench::AppendF(&kernels_raw, "%s\"%s\": %.3f", t == 0 ? "" : ", ",
                     tiers[t]->name, row.tier_gbps[t]);
    }
    kernels_raw += "}";
    if (!row.thread_gbps.empty()) {
      kernels_raw += ",\n     \"threads\": {";
      for (size_t t = 0; t < row.thread_gbps.size(); t++) {
        bench::AppendF(&kernels_raw, "%s\"%zu\": %.3f", t == 0 ? "" : ", ",
                       kThreadCounts[t], row.thread_gbps[t]);
      }
      kernels_raw += "}";
    }
    bench::AppendF(&kernels_raw, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  kernels_raw += "  ]";
  bench::UpsertJsonSection(&sections, "kernels", std::move(kernels_raw));
  std::string scatter_raw = "[\n";
  for (size_t i = 0; i < scatter64.size(); i++) {
    const Scatter64Shape& s = scatter64[i];
    bench::AppendF(&scatter_raw,
                   "    {\"elements\": %zu, \"direct_gbps\": %.3f, "
                   "\"wc_memcpy_gbps\": %.3f, \"conflict_wc_gbps\": %.3f}%s\n",
                   s.elements, s.direct_gbps, s.wc_gbps, s.conflict_gbps,
                   i + 1 < scatter64.size() ? "," : "");
  }
  scatter_raw += "  ]";
  bench::UpsertJsonSection(&sections, "scatter_64bucket",
                           std::move(scatter_raw));
  if (!bench::WriteJsonSections(path, sections)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::printf("kernel throughput (dispatched tier=%s) -> %s\n", active.name,
              path);
  for (const ResultRow& row : rows) {
    std::printf("  %-24s", row.name);
    for (size_t t = 0; t < tiers.size(); t++) {
      std::printf("  %s %6.2f GB/s", tiers[t]->name, row.tier_gbps[t]);
    }
    std::printf("  | dispatched %6.2f GB/s (%.2fx scalar)\n",
                row.dispatched_gbps, row.dispatched_gbps / row.tier_gbps[0]);
    if (!row.thread_gbps.empty()) {
      std::printf("  %-24s", "");
      for (size_t t = 0; t < row.thread_gbps.size(); t++) {
        std::printf("  T=%zu %6.2f GB/s", kThreadCounts[t],
                    row.thread_gbps[t]);
      }
      std::printf("\n");
    }
  }
  for (const Scatter64Shape& s : scatter64) {
    std::printf(
        "  scatter 64-bucket n=%-8zu direct %6.2f GB/s  wc+memcpy %6.2f "
        "GB/s  conflict-wc %6.2f GB/s%s\n",
        s.elements, s.direct_gbps, s.wc_gbps, s.conflict_gbps,
        s.conflict_gbps == 0 ? " (unavailable)" : "");
  }
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) {
  // The hand-timed sweep costs a few seconds and rewrites this tool's
  // sections of BENCH_kernels.json in cwd (preserving everyone
  // else's); skip it for listing-only invocations.
  // (Scan before Initialize: benchmark strips its flags from argv.)
  bool listing_only = false;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--benchmark_list_tests", 22) == 0) {
      listing_only = true;
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!listing_only) {
    progidx::WriteKernelThroughputJson("BENCH_kernels.json");
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
