// Micro-benchmarks (google-benchmark) for the kernels behind the cost
// model's Table 1 constants: scan kernels, crack kernels, bucket
// appends, AVL inserts, and B+-tree lookups.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "baselines/avl_tree.h"
#include "baselines/cracking_kernels.h"
#include "btree/btree.h"
#include "common/predication.h"
#include "common/rng.h"
#include "storage/bucket_chain.h"

namespace progidx {
namespace {

std::vector<value_t> RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> data(n);
  for (value_t& v : data) {
    v = static_cast<value_t>(rng.NextBounded(static_cast<uint64_t>(n)));
  }
  return data;
}

void BM_PredicatedRangeSum(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> data = RandomData(n, 1);
  const RangeQuery q{static_cast<value_t>(n / 4),
                     static_cast<value_t>(3 * n / 4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PredicatedRangeSum(data.data(), n, q));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_PredicatedRangeSum)->Arg(1 << 16)->Arg(1 << 20);

void BM_BranchedRangeSum(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> data = RandomData(n, 1);
  const RangeQuery q{static_cast<value_t>(n / 4),
                     static_cast<value_t>(3 * n / 4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BranchedRangeSum(data.data(), n, q));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_BranchedRangeSum)->Arg(1 << 16)->Arg(1 << 20);

void BM_CrackInTwoPredicated(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> original = RandomData(n, 2);
  std::vector<value_t> data = original;
  for (auto _ : state) {
    state.PauseTiming();
    data = original;
    state.ResumeTiming();
    benchmark::DoNotOptimize(CrackInTwoPredicated(
        data.data(), 0, n, static_cast<value_t>(n / 2)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CrackInTwoPredicated)->Arg(1 << 16)->Arg(1 << 20);

void BM_CrackInTwoBranched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> original = RandomData(n, 2);
  std::vector<value_t> data = original;
  for (auto _ : state) {
    state.PauseTiming();
    data = original;
    state.ResumeTiming();
    benchmark::DoNotOptimize(CrackInTwoBranched(
        data.data(), 0, n, static_cast<value_t>(n / 2)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CrackInTwoBranched)->Arg(1 << 16)->Arg(1 << 20);

void BM_BucketChainAppend(benchmark::State& state) {
  const size_t n = 1 << 16;
  const std::vector<value_t> data = RandomData(n, 3);
  for (auto _ : state) {
    BucketChain chain(static_cast<size_t>(state.range(0)));
    for (const value_t v : data) chain.Append(v);
    benchmark::DoNotOptimize(chain.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_BucketChainAppend)->Arg(256)->Arg(4096)->Arg(65536);

void BM_AvlInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<value_t> data = RandomData(n, 4);
  for (auto _ : state) {
    AvlTree tree;
    for (size_t i = 0; i < n; i++) {
      tree.Insert(data[i], static_cast<size_t>(data[i]));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_AvlInsert)->Arg(1 << 10)->Arg(1 << 14);

void BM_BTreeLookup(benchmark::State& state) {
  const size_t n = 1 << 20;
  std::vector<value_t> data = RandomData(n, 5);
  std::sort(data.begin(), data.end());
  BPlusTree tree(data.data(), n, static_cast<size_t>(state.range(0)));
  tree.BuildAll();
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.LowerBound(static_cast<value_t>(rng.NextBounded(n))));
  }
}
BENCHMARK(BM_BTreeLookup)->Arg(16)->Arg(64)->Arg(256);

void BM_BinarySearchBaseline(benchmark::State& state) {
  const size_t n = 1 << 20;
  std::vector<value_t> data = RandomData(n, 5);
  std::sort(data.begin(), data.end());
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        std::lower_bound(data.begin(), data.end(),
                         static_cast<value_t>(rng.NextBounded(n))));
  }
}
BENCHMARK(BM_BinarySearchBaseline);

}  // namespace
}  // namespace progidx

BENCHMARK_MAIN();
