#ifndef PROGIDX_BENCH_JSON_STORE_H_
#define PROGIDX_BENCH_JSON_STORE_H_

// Read-merge-write access to BENCH_kernels.json, shared by
// bench/micro_kernels and bench/batch_throughput so the two tools can
// run in either order without clobbering each other's sections. The
// file is one flat JSON object; each tool owns some top-level keys and
// must preserve every key it does not own (ROADMAP: the file is the
// perf trajectory — extend it, never replace it).
//
// The parser is deliberately minimal: it splits a JSON object into
// (key, raw-value-text) pairs by bracket/string matching, without
// interpreting the values. That is exactly enough to upsert a section
// while passing unknown ones through byte-for-byte.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace progidx {
namespace bench {

struct JsonSection {
  std::string key;
  std::string raw;  ///< value text, verbatim (object/array/scalar)
};

namespace json_detail {

inline void SkipWs(const std::string& s, size_t* i) {
  while (*i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*i])) != 0) {
    (*i)++;
  }
}

/// Advances *i past the JSON string starting at the opening quote;
/// returns false on malformed input.
inline bool SkipString(const std::string& s, size_t* i) {
  if (*i >= s.size() || s[*i] != '"') return false;
  (*i)++;
  while (*i < s.size()) {
    if (s[*i] == '\\') {
      *i += 2;
      continue;
    }
    if (s[*i] == '"') {
      (*i)++;
      return true;
    }
    (*i)++;
  }
  return false;
}

/// Advances *i past one JSON value (scalar, string, object, or array);
/// returns false on malformed input.
inline bool SkipValue(const std::string& s, size_t* i) {
  SkipWs(s, i);
  if (*i >= s.size()) return false;
  const char c = s[*i];
  if (c == '"') return SkipString(s, i);
  if (c == '{' || c == '[') {
    int depth = 0;
    while (*i < s.size()) {
      const char d = s[*i];
      if (d == '"') {
        if (!SkipString(s, i)) return false;
        continue;
      }
      if (d == '{' || d == '[') depth++;
      if (d == '}' || d == ']') depth--;
      (*i)++;
      if (depth == 0) return true;
    }
    return false;
  }
  // Scalar: run to the next comma or closing brace at this level.
  while (*i < s.size() && s[*i] != ',' && s[*i] != '}' && s[*i] != ']') {
    (*i)++;
  }
  return true;
}

}  // namespace json_detail

namespace json_detail {

/// Parses `text` as a flat JSON object into `out`; false on malformed
/// input (out is left in an unspecified state).
inline bool ParseSections(const std::string& text,
                          std::vector<JsonSection>* out) {
  size_t i = 0;
  SkipWs(text, &i);
  if (i >= text.size() || text[i] != '{') return false;
  i++;
  while (true) {
    SkipWs(text, &i);
    if (i >= text.size()) return false;  // truncated
    if (text[i] == '}') return true;
    const size_t key_begin = i;
    if (!SkipString(text, &i)) return false;
    const std::string key = text.substr(key_begin + 1, i - key_begin - 2);
    SkipWs(text, &i);
    if (i >= text.size() || text[i] != ':') return false;
    i++;
    SkipWs(text, &i);
    const size_t val_begin = i;
    if (!SkipValue(text, &i)) return false;
    size_t val_end = i;
    while (val_end > val_begin &&
           std::isspace(static_cast<unsigned char>(text[val_end - 1])) != 0) {
      val_end--;
    }
    out->push_back({key, text.substr(val_begin, val_end - val_begin)});
    SkipWs(text, &i);
    if (i < text.size() && text[i] == ',') i++;
  }
}

/// First unused backup path: `<path>.bak`, then `.bak.1`, `.bak.2`, …
/// — a second corruption event must not clobber the bytes the first
/// one saved. Bounded at .bak.99: beyond that the oldest evidence
/// matters more than the newest, so the probe gives up and reuses it.
inline std::string FreshBackupPath(const std::string& path) {
  std::string bak = path + ".bak";
  for (int n = 1; n <= 99; n++) {
    std::FILE* f = std::fopen(bak.c_str(), "r");
    if (f == nullptr) return bak;
    std::fclose(f);
    bak = path + ".bak." + std::to_string(n);
  }
  return bak;
}

}  // namespace json_detail

/// Parses `path` as a flat JSON object into ordered (key, raw-value)
/// sections. A missing or empty file yields an empty list silently (the
/// writer then produces a fresh object). A file with content that fails
/// to parse — truncated by a crash predating the atomic-rename writer,
/// or hand-edited into invalidity — yields an empty list, but first the
/// bad bytes are copied to `<path>.bak` (or `.bak.1`, `.bak.2`, … when
/// earlier backups exist — each corruption event keeps its own
/// evidence) so nothing is silently lost when the caller's next write
/// starts a fresh object; one warning on stderr names the backup.
inline std::vector<JsonSection> ReadJsonSections(const char* path) {
  std::vector<JsonSection> sections;
  std::string text;
  if (std::FILE* f = std::fopen(path, "r")) {
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      text.append(buf, got);
    }
    std::fclose(f);
  }
  if (!json_detail::ParseSections(text, &sections)) {
    sections.clear();
    for (const char c : text) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        const std::string bak = json_detail::FreshBackupPath(path);
        bool saved = false;
        if (std::FILE* f = std::fopen(bak.c_str(), "w")) {
          saved = std::fwrite(text.data(), 1, text.size(), f) == text.size();
          saved = (std::fclose(f) == 0) && saved;
        }
        const std::string note =
            saved ? "unparsed content backed up to " + bak
                  : std::string("backup failed; unparsed content discarded");
        std::fprintf(stderr,
                     "progidx: %s is not a parseable JSON object; starting "
                     "fresh (%s)\n",
                     path, note.c_str());
        break;
      }
    }
  }
  return sections;
}

/// Replaces the section named `key` (in place, preserving order) or
/// appends it.
inline void UpsertJsonSection(std::vector<JsonSection>* sections,
                              const std::string& key, std::string raw) {
  for (JsonSection& s : *sections) {
    if (s.key == key) {
      s.raw = std::move(raw);
      return;
    }
  }
  sections->push_back({key, std::move(raw)});
}

/// Writes the sections back as one flat JSON object, through a
/// temp-file + rename so an interrupted write never leaves a truncated
/// file for the next tool to mis-parse; returns false on any failure.
inline bool WriteJsonSections(const char* path,
                              const std::vector<JsonSection>& sections) {
  const std::string tmp = std::string(path) + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < sections.size(); i++) {
    std::fprintf(f, "  \"%s\": %s%s\n", sections[i].key.c_str(),
                 sections[i].raw.c_str(),
                 i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return std::rename(tmp.c_str(), path) == 0;
}

/// printf-append onto a std::string (the section builders' workhorse).
/// Output longer than the scratch buffer appends the truncated prefix
/// (snprintf reports the would-be length; never read past the buffer).
template <typename... Args>
inline void AppendF(std::string* out, const char* fmt, Args... args) {
  char buf[512];
  const int len = std::snprintf(buf, sizeof buf, fmt, args...);
  if (len <= 0) return;
  const size_t take =
      std::min(static_cast<size_t>(len), sizeof buf - 1);
  out->append(buf, take);
}

}  // namespace bench
}  // namespace progidx

#endif  // PROGIDX_BENCH_JSON_STORE_H_
