// Figure 8: cost-model validation with a fixed indexing budget
// (δ = 0.25) on the SkyServer workload. Prints measured vs predicted
// per-query times for each progressive algorithm (log-sampled query
// numbers, as in the paper's log-log plots) plus the mean relative
// error; full series go to CSV with --csv.

#include <cmath>

#include "bench/bench_util.h"
#include "eval/report.h"

namespace progidx {
namespace {

bool LogSampled(size_t query_number) {
  // 1, 2, ..., 10, 20, ..., 100, 200, ... (paper plots are log-x).
  size_t scale = 1;
  while (query_number > 10 * scale) scale *= 10;
  return query_number % scale == 0;
}

int Run(int argc, char** argv) {
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  cli.AddFlag("delta", "0.25", "fixed delta");
  if (!cli.Parse(argc, argv)) return 0;

  const bench::SkyServerBench bench = bench::MakeSkyServerBench(cli);
  const double delta = cli.GetDouble("delta");

  std::printf("=== Figure 8: cost model, fixed delta=%.2f (SkyServer, "
              "n=%zu) ===\n",
              delta, bench.column.size());
  TableReport report({"algorithm", "query", "measured_s", "predicted_s"});
  for (const std::string& id : ProgressiveIndexIds()) {
    auto index = MakeIndex(id, bench.column, BudgetSpec::FixedDelta(delta));
    const Metrics metrics = RunWorkload(index.get(), bench.queries);
    for (size_t i = 0; i < metrics.records().size(); i++) {
      if (!LogSampled(i + 1)) continue;
      const QueryRecord& r = metrics.records()[i];
      report.AddRow({index->name(), TableReport::FormatCount(
                                        static_cast<int64_t>(i) + 1),
                     TableReport::FormatSecs(r.secs),
                     TableReport::FormatSecs(r.predicted)});
    }
    // Report the model error separately for the build-up (where the
    // absolute times matter) and the post-convergence tail (micro-
    // second lookups, where small absolute offsets dominate the
    // relative error).
    double pre_err = 0;
    double post_err = 0;
    size_t pre_n = 0;
    size_t post_n = 0;
    for (const QueryRecord& r : metrics.records()) {
      if (r.predicted <= 0 || r.secs <= 0) continue;
      const double err = std::abs(r.secs - r.predicted) / r.secs;
      if (r.converged) {
        post_err += err;
        post_n++;
      } else {
        pre_err += err;
        pre_n++;
      }
    }
    std::printf("%-22s rel.err pre-convergence=%.2f (%zu q) "
                "post=%.2f (%zu q)\n",
                index->name().c_str(),
                pre_n ? pre_err / static_cast<double>(pre_n) : 0, pre_n,
                post_n ? post_err / static_cast<double>(post_n) : 0, post_n);
  }
  report.Print();
  const std::string csv = cli.GetString("csv");
  if (!csv.empty()) report.WriteCsv(csv);
  return 0;
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) { return progidx::Run(argc, argv); }
