// Figure 9: cost-model validation with the adaptive indexing budget
// (t_budget = 0.2 * t_scan) on the SkyServer workload. The signature
// result: total per-query time stays ~flat at 1.2x scan until the
// index converges, then drops to index-lookup cost.

#include <cmath>

#include "bench/bench_util.h"
#include "eval/report.h"

namespace progidx {
namespace {

bool LogSampled(size_t query_number) {
  size_t scale = 1;
  while (query_number > 10 * scale) scale *= 10;
  return query_number % scale == 0;
}

int Run(int argc, char** argv) {
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  cli.AddFlag("budget", "0.2", "indexing budget as fraction of scan cost");
  if (!cli.Parse(argc, argv)) return 0;

  const bench::SkyServerBench bench = bench::MakeSkyServerBench(cli);
  const double budget = cli.GetDouble("budget");
  const double scan_secs = bench::MeasuredScanSecs(bench.column);

  std::printf("=== Figure 9: cost model, adaptive budget=%.2f*t_scan "
              "(SkyServer, n=%zu; t_scan=%s, target=%s) ===\n",
              budget, bench.column.size(),
              TableReport::FormatSecs(scan_secs).c_str(),
              TableReport::FormatSecs((1 + budget) * scan_secs).c_str());
  TableReport report(
      {"algorithm", "query", "measured_s", "predicted_s", "converged"});
  for (const std::string& id : ProgressiveIndexIds()) {
    auto index = MakeIndex(id, bench.column, BudgetSpec::Adaptive(budget));
    const Metrics metrics = RunWorkload(index.get(), bench.queries);
    for (size_t i = 0; i < metrics.records().size(); i++) {
      if (!LogSampled(i + 1)) continue;
      const QueryRecord& r = metrics.records()[i];
      report.AddRow({index->name(),
                     TableReport::FormatCount(static_cast<int64_t>(i) + 1),
                     TableReport::FormatSecs(r.secs),
                     TableReport::FormatSecs(r.predicted),
                     r.converged ? "yes" : "no"});
    }
    // Report the model error separately for the build-up (where the
    // absolute times matter) and the post-convergence tail (micro-
    // second lookups, where small absolute offsets dominate the
    // relative error).
    double pre_err = 0;
    double post_err = 0;
    size_t pre_n = 0;
    size_t post_n = 0;
    for (const QueryRecord& r : metrics.records()) {
      if (r.predicted <= 0 || r.secs <= 0) continue;
      const double err = std::abs(r.secs - r.predicted) / r.secs;
      if (r.converged) {
        post_err += err;
        post_n++;
      } else {
        pre_err += err;
        pre_n++;
      }
    }
    std::printf("%-22s rel.err pre-convergence=%.2f (%zu q) "
                "post=%.2f (%zu q)\n",
                index->name().c_str(),
                pre_n ? pre_err / static_cast<double>(pre_n) : 0, pre_n,
                post_n ? post_err / static_cast<double>(post_n) : 0, post_n);
    std::printf("%-22s converged at query %s\n", index->name().c_str(),
                TableReport::FormatCount(metrics.ConvergenceQuery()).c_str());
  }
  report.Print();
  const std::string csv = cli.GetString("csv");
  if (!csv.empty()) report.WriteCsv(csv);
  return 0;
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) { return progidx::Run(argc, argv); }
