// Streaming-update throughput (docs/updates.md): a YCSB-style mixed
// workload — reads, inserts, value updates (delete + re-append), and
// deletes in configurable proportions — driven against the budgeted
// delta-merge UpdatableIndex over each of the four progressive inners.
//
// Two measurements per (index, mix) cell:
//   - ops/sec over the churn phase, the headline cost of keeping
//     updates immediately visible while merges ride the query budget;
//   - time-to-convergence-under-churn: once the churn stops, how many
//     drain queries (and seconds) until the running merge is fully
//     absorbed and the inner index over the merged base converges.
//     A residual delta below the merge threshold stays unmerged by
//     design, so "quiesced" — merge drained + inner converged — is the
//     steady state being timed, not pending_count() == 0.
//
// Emits an `updates` section merged into BENCH_kernels.json through
// the shared read-merge-write store (bench/json_store.h), preserving
// every section the other drivers own.
//
// Environment (also see README):
//   PROGIDX_UPDATE_MIX       "read:insert:update:delete" percentages,
//                            e.g. "80:10:5:5" — replaces the default
//                            mix list with this single mix
//   PROGIDX_MERGE_THRESHOLD  delta fraction of base that triggers a
//                            merge (default 0.02; same knob as the
//                            --merge-threshold flag)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_store.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/updatable_index.h"

namespace progidx {
namespace {

struct Mix {
  std::string label;  ///< "read:insert:update:delete"
  int read = 0, insert = 0, update = 0, del = 0;
};

/// Parses "95:5:0:0" into a Mix; false when the four fields are
/// missing, negative, or do not sum to 100.
bool ParseMix(const std::string& text, Mix* out) {
  int r = 0, i = 0, u = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d:%d:%d:%d", &r, &i, &u, &d) != 4) {
    return false;
  }
  if (r < 0 || i < 0 || u < 0 || d < 0 || r + i + u + d != 100) return false;
  *out = Mix{text, r, i, u, d};
  return true;
}

struct MixedRow {
  std::string index_id;
  Mix mix;
  size_t ops = 0;
  double ops_per_sec = 0;
  size_t updates_applied = 0;
  size_t merges = 0;
  size_t drain_queries = 0;  ///< queries until quiesced after churn
  double drain_secs = 0;
  bool quiesced = false;
};

/// One churn-then-drain run. The value pool mirrors the index multiset
/// so deletes always target a present occurrence (the Delete()
/// precondition); updates are a delete of a random present value plus
/// an append of a fresh one, counted as one operation.
MixedRow RunCell(const std::string& index_id, const Column& column,
                 const Mix& mix, size_t ops, double delta,
                 double merge_threshold, uint64_t seed) {
  UpdatableIndex index(
      std::vector<value_t>(column.values()),
      [&index_id, delta](const Column& c) {
        return MakeIndex(index_id, c, BudgetSpec::FixedDelta(delta));
      },
      merge_threshold);
  std::vector<value_t> pool(column.values());
  Rng rng(seed);
  const value_t lo = column.min_value();
  const value_t hi = column.max_value();
  const value_t span = (hi - lo) / 10;  // ~10% selectivity reads
  auto read = [&] {
    const value_t a = rng.NextInRange(lo, hi - span);
    (void)index.Query(RangeQuery{a, a + span});
  };
  auto insert = [&] {
    const value_t v = rng.NextInRange(lo, hi);
    index.Append(v);
    pool.push_back(v);
  };
  auto remove = [&] {
    const size_t at = rng.NextBounded(pool.size());
    index.Delete(pool[at]);
    pool[at] = pool.back();
    pool.pop_back();
  };

  MixedRow row;
  row.index_id = index_id;
  row.mix = mix;
  row.ops = ops;
  Timer churn;
  for (size_t i = 0; i < ops; i++) {
    const int roll = static_cast<int>(rng.NextBounded(100));
    if (roll < mix.read || pool.empty()) {
      read();
    } else if (roll < mix.read + mix.insert) {
      insert();
      row.updates_applied++;
    } else if (roll < mix.read + mix.insert + mix.update) {
      remove();
      insert();
      row.updates_applied++;
    } else {
      remove();
      row.updates_applied++;
    }
  }
  const double churn_secs = churn.ElapsedSeconds();
  row.ops_per_sec =
      churn_secs > 0 ? static_cast<double>(ops) / churn_secs : 0;

  Timer drain;
  const size_t drain_cap = 20000;
  while (row.drain_queries < drain_cap &&
         (index.merge_in_progress() || !index.inner().converged())) {
    read();
    row.drain_queries++;
  }
  row.drain_secs = drain.ElapsedSeconds();
  row.quiesced = !index.merge_in_progress() && index.inner().converged();
  row.merges = index.merge_count();
  return row;
}

/// Merges the `updates` rows into BENCH_kernels.json; sections owned by
/// the other drivers (kernels, batch, serve, ...) pass through intact.
void WriteUpdatesJson(const char* path, double merge_threshold,
                      const std::vector<MixedRow>& rows) {
  std::vector<bench::JsonSection> sections = bench::ReadJsonSections(path);
  std::string raw = "[\n";
  for (size_t i = 0; i < rows.size(); i++) {
    const MixedRow& r = rows[i];
    bench::AppendF(
        &raw,
        "    {\"index\": \"%s\", \"mix\": \"%s\", \"read_pct\": %d, "
        "\"insert_pct\": %d, \"update_pct\": %d, \"delete_pct\": %d, "
        "\"ops\": %zu, \"ops_per_sec\": %.1f, \"updates_applied\": %zu, "
        "\"merges\": %zu, \"merge_threshold\": %.4f, "
        "\"drain_queries_to_converge\": %zu, \"drain_secs\": %.4f, "
        "\"quiesced\": %s}%s\n",
        r.index_id.c_str(), r.mix.label.c_str(), r.mix.read, r.mix.insert,
        r.mix.update, r.mix.del, r.ops, r.ops_per_sec, r.updates_applied,
        r.merges, merge_threshold, r.drain_queries, r.drain_secs,
        r.quiesced ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  raw += "  ]";
  bench::UpsertJsonSection(&sections, "updates", std::move(raw));
  if (!bench::WriteJsonSections(path, sections)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::printf("mixed-workload update rows -> %s\n", path);
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) {
  using namespace progidx;
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  // Sized so even the 95:5:0:0 mix crosses the merge threshold
  // (5% of 20000 ops = 1000 updates = 0.01 × 100000 base): every cell
  // measures churn *through* at least one full budgeted merge.
  cli.AddFlag("n", "100000", "column size");
  cli.AddFlag("ops", "20000", "operations per (index, mix) cell");
  cli.AddFlag("delta", "0.01", "fixed per-query indexing fraction");
  cli.AddFlag("merge-threshold", "0.01",
              "delta fraction of base that triggers a merge");
  cli.AddFlag("mixes", "95:5:0:0,80:10:5:5,50:30:10:10",
              "comma-separated read:insert:update:delete percentages");
  cli.AddFlag("json", "BENCH_kernels.json", "merged JSON output path");
  if (!cli.Parse(argc, argv)) return 0;

  const size_t n = static_cast<size_t>(cli.GetInt("n"));
  const size_t ops = static_cast<size_t>(cli.GetInt("ops"));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed"));
  const double delta = cli.GetDouble("delta");
  double merge_threshold = cli.GetDouble("merge-threshold");
  if (const char* env = env::Get("PROGIDX_MERGE_THRESHOLD")) {
    const double v = std::atof(env);
    if (v > 0) merge_threshold = v;
  }

  std::vector<Mix> mixes;
  std::string mix_list = cli.GetString("mixes");
  if (const char* env = env::Get("PROGIDX_UPDATE_MIX")) {
    mix_list = env;  // single-mix override for ad-hoc runs
  }
  size_t start = 0;
  while (start <= mix_list.size()) {
    const size_t comma = mix_list.find(',', start);
    const std::string one =
        mix_list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
    Mix mix;
    if (!ParseMix(one, &mix)) {
      std::fprintf(stderr,
                   "bad mix \"%s\" (want read:insert:update:delete summing "
                   "to 100)\n",
                   one.c_str());
      return 1;
    }
    mixes.push_back(mix);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }

  const Column column = MakeUniformColumn(n, seed);
  std::vector<MixedRow> rows;
  std::printf("mixed workload: n=%zu ops=%zu delta=%g merge_threshold=%g\n",
              n, ops, delta, merge_threshold);
  for (const std::string& id : ProgressiveIndexIds()) {
    for (const Mix& mix : mixes) {
      const MixedRow row =
          RunCell(id, column, mix, ops, delta, merge_threshold, seed + 7);
      std::printf(
          "  %-5s %-12s %9.1f ops/s  updates %5zu  merges %2zu  "
          "drain %5zu q / %.3fs%s\n",
          row.index_id.c_str(), row.mix.label.c_str(), row.ops_per_sec,
          row.updates_applied, row.merges, row.drain_queries, row.drain_secs,
          row.quiesced ? "" : "  (drain cap hit)");
      rows.push_back(row);
    }
  }
  WriteUpdatesJson(cli.GetString("json").c_str(), merge_threshold, rows);
  return 0;
}
