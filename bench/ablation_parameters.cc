// Ablations of the design constants the paper fixes by argument rather
// than by experiment (DESIGN.md §7):
//   * bucket count b      — §3.2 picks 64 = min(L1 lines, TLB entries)
//   * block capacity sb   — the linked-block bucket layout
//   * B+-tree fanout β    — the consolidation-phase tree
//   * budget fraction     — t_budget as a share of t_scan
// Each sweep reports convergence and cumulative time so the chosen
// default can be compared against its neighbors.

#include "bench/bench_util.h"
#include "eval/report.h"

namespace progidx {
namespace {

void RunSweep(const char* title, const bench::SkyServerBench& bench,
              const std::string& index_id,
              const std::vector<ProgressiveOptions>& variants,
              const std::vector<std::string>& labels,
              const std::vector<BudgetSpec>& budgets) {
  std::printf("\n--- %s (%s) ---\n", title, index_id.c_str());
  TableReport report({"variant", "first_q_s", "convergence_q",
                      "cumulative_s"});
  for (size_t i = 0; i < variants.size(); i++) {
    auto index = MakeIndex(index_id, bench.column, budgets[i], variants[i]);
    const Metrics metrics = RunWorkload(index.get(), bench.queries);
    report.AddRow({labels[i],
                   TableReport::FormatSecs(metrics.FirstQuerySecs()),
                   TableReport::FormatCount(metrics.ConvergenceQuery()),
                   TableReport::FormatSecs(metrics.CumulativeSecs())});
  }
  report.Print();
}

int Run(int argc, char** argv) {
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  if (!cli.Parse(argc, argv)) return 0;
  const bench::SkyServerBench bench = bench::MakeSkyServerBench(cli);
  std::printf("=== Ablations (SkyServer, n=%zu, %zu queries) ===\n",
              bench.column.size(), bench.queries.size());

  const BudgetSpec adaptive = BudgetSpec::Adaptive(0.2);

  {
    std::vector<ProgressiveOptions> variants(3);
    variants[0].bucket_count = 16;
    variants[1].bucket_count = 64;
    variants[2].bucket_count = 256;
    RunSweep("bucket count b", bench, "pmsd", variants,
             {"b=16", "b=64 (paper)", "b=256"},
             {adaptive, adaptive, adaptive});
  }
  {
    std::vector<ProgressiveOptions> variants(3);
    variants[0].block_capacity = 512;
    variants[1].block_capacity = 4096;
    variants[2].block_capacity = 32768;
    RunSweep("block capacity sb", bench, "pmsd", variants,
             {"sb=512", "sb=4096 (default)", "sb=32768"},
             {adaptive, adaptive, adaptive});
  }
  {
    std::vector<ProgressiveOptions> variants(3);
    variants[0].btree_fanout = 16;
    variants[1].btree_fanout = 64;
    variants[2].btree_fanout = 256;
    RunSweep("B+-tree fanout beta", bench, "pq", variants,
             {"beta=16", "beta=64 (default)", "beta=256"},
             {adaptive, adaptive, adaptive});
  }
  {
    std::vector<ProgressiveOptions> variants(3);
    RunSweep("budget fraction", bench, "pq", variants,
             {"0.1*t_scan", "0.2*t_scan (paper)", "0.4*t_scan"},
             {BudgetSpec::Adaptive(0.1), BudgetSpec::Adaptive(0.2),
              BudgetSpec::Adaptive(0.4)});
  }
  return 0;
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) { return progidx::Run(argc, argv); }
