// Figure 7: impact of δ on the four progressive algorithms, SkyServer
// workload, fixed-delta budgets.
//   7a first-query time   7b queries until pay-off
//   7c queries until convergence   7d cumulative time

#include "bench/bench_util.h"
#include "eval/report.h"

namespace progidx {
namespace {

int Run(int argc, char** argv) {
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  cli.AddFlag("deltas", "0.005,0.01,0.025,0.05,0.1,0.25,0.5,1.0",
              "comma-separated delta sweep");
  if (!cli.Parse(argc, argv)) return 0;

  const bench::SkyServerBench bench = bench::MakeSkyServerBench(cli);
  const double scan_secs = bench::MeasuredScanSecs(bench.column);

  std::vector<double> deltas;
  {
    const std::string spec = cli.GetString("deltas");
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t next = spec.find(',', pos);
      if (next == std::string::npos) next = spec.size();
      deltas.push_back(std::stod(spec.substr(pos, next - pos)));
      pos = next + 1;
    }
  }

  std::printf("=== Figure 7: delta impact (SkyServer, n=%zu, %zu queries) "
              "===\n",
              bench.column.size(), bench.queries.size());
  TableReport report({"algorithm", "delta", "first_query_s",
                      "payoff_query", "convergence_query", "cumulative_s"});
  for (const std::string& id : ProgressiveIndexIds()) {
    for (const double delta : deltas) {
      auto index =
          MakeIndex(id, bench.column, BudgetSpec::FixedDelta(delta));
      const Metrics metrics = RunWorkload(index.get(), bench.queries);
      report.AddRow({index->name(), TableReport::FormatSecs(delta),
                     TableReport::FormatSecs(metrics.FirstQuerySecs()),
                     TableReport::FormatCount(metrics.PayoffQuery(scan_secs)),
                     TableReport::FormatCount(metrics.ConvergenceQuery()),
                     TableReport::FormatSecs(metrics.CumulativeSecs())});
    }
  }
  report.Print();
  const std::string csv = cli.GetString("csv");
  if (!csv.empty()) report.WriteCsv(csv);
  return 0;
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) { return progidx::Run(argc, argv); }
