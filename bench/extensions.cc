// The §6 future-work extensions in action:
//   * Progressive Hash Table vs Progressive Radixsort (LSD) on point
//     queries (both accelerate points long before convergence);
//   * Progressive Column Imprints vs Full Scan on clustered data
//     (imprints filter cachelines without ever reordering the column);
//   * approximate query processing: estimate quality while the index
//     builds.

#include <cmath>

#include "bench/bench_util.h"
#include "core/progressive_quicksort.h"
#include "eval/report.h"

namespace progidx {
namespace {

int Run(int argc, char** argv) {
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  if (!cli.Parse(argc, argv)) return 0;
  const size_t n = static_cast<size_t>(cli.GetInt("n"));
  const size_t nq = static_cast<size_t>(cli.GetInt("queries"));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed"));

  std::printf("=== Extensions (n=%zu, %zu queries) ===\n", n, nq);

  {
    std::printf("\n--- Point queries: P. Hash Table vs P. Radixsort (LSD) "
                "vs Full Scan ---\n");
    const Column column = MakeUniformColumn(n, seed);
    auto queries = WorkloadGenerator::Generate(
        WorkloadPattern::kPoint, column.min_value(), column.max_value(), nq,
        0.1, seed + 1);
    TableReport report({"index", "first_q_s", "convergence_q",
                        "cumulative_s"});
    for (const std::string& id :
         {std::string("phash"), std::string("plsd"), std::string("fs")}) {
      auto index = MakeIndex(id, column, BudgetSpec::Adaptive(0.2));
      const Metrics metrics = RunWorkload(index.get(), queries);
      report.AddRow({index->name(),
                     TableReport::FormatSecs(metrics.FirstQuerySecs()),
                     TableReport::FormatCount(metrics.ConvergenceQuery()),
                     TableReport::FormatSecs(metrics.CumulativeSecs())});
    }
    report.Print();
  }

  {
    std::printf("\n--- Range queries on clustered data: P. Column Imprints "
                "vs Full Scan ---\n");
    const Column column = MakeSkyServerColumn(n, seed);
    auto queries = MakeSkyServerWorkload(nq, seed + 1);
    TableReport report({"index", "first_q_s", "convergence_q",
                        "cumulative_s"});
    for (const std::string& id :
         {std::string("pimprints"), std::string("fs")}) {
      auto index = MakeIndex(id, column, BudgetSpec::Adaptive(0.2));
      const Metrics metrics = RunWorkload(index.get(), queries);
      report.AddRow({index->name(),
                     TableReport::FormatSecs(metrics.FirstQuerySecs()),
                     TableReport::FormatCount(metrics.ConvergenceQuery()),
                     TableReport::FormatSecs(metrics.CumulativeSecs())});
    }
    report.Print();
  }

  {
    std::printf("\n--- Approximate query processing on P. Quicksort "
                "(2000 samples/query) ---\n");
    const Column column = MakeUniformColumn(n, seed);
    ProgressiveQuicksort index(column, BudgetSpec::FixedDelta(0.02));
    const RangeQuery q{static_cast<value_t>(n / 10),
                       static_cast<value_t>(n / 2)};
    // Ground truth.
    int64_t truth = 0;
    for (size_t i = 0; i < column.size(); i++) {
      const value_t v = column[i];
      if (v >= q.low && v <= q.high) truth += v;
    }
    TableReport report({"query", "estimate", "rel_error", "stderr/|sum|",
                        "exact"});
    for (int i = 1; i <= 64; i *= 2) {
      ApproximateResult approx;
      for (int j = 0; j < i - i / 2; j++) {
        approx = index.QueryApproximate(q, 2000, seed + i + j);
      }
      const double rel =
          std::abs(approx.sum - static_cast<double>(truth)) /
          std::abs(static_cast<double>(truth));
      report.AddRow({TableReport::FormatCount(i),
                     TableReport::FormatSecs(approx.sum),
                     TableReport::FormatSci(rel),
                     TableReport::FormatSci(
                         approx.sum_stderr /
                         std::abs(static_cast<double>(truth))),
                     approx.exact ? "yes" : "no"});
    }
    report.Print();
  }
  return 0;
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) { return progidx::Run(argc, argv); }
