// Shared-scan batch throughput: queries/sec vs batch size (1/4/16/64)
// on the uniform random workload and the SkyServer log, during the
// *pre-convergence* creation phase (the regime where the unrefined
// remainder dominates, so one shared scan replaces up to B per-query
// scans while the index still advances one budget per batch) — plus
// refinement-phase (post-creation-onset) rows per progressive index,
// where the shared candidate-chain scans and multi-bound cracking of
// the batch executor's refinement paths carry the win.
//
// Emits `batch` rows (phase, queries_per_sec, speedup over batch 1,
// and the cost model's per-query prediction) merged into
// BENCH_kernels.json next to the kernel/thread rows micro_kernels
// writes — read-merge-write in both tools, so either run order
// preserves the other's sections — plus a stdout table.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_store.h"
#include "common/timer.h"
#include "core/decision_tree.h"
#include "exec/query_batch.h"

namespace progidx {
namespace {

constexpr size_t kBatchSizes[] = {1, 4, 16, 64};
/// Refinement rows need only the baseline and the headline batch size.
constexpr size_t kRefinementBatchSizes[] = {1, 16};

struct BatchRow {
  std::string index_id;
  std::string workload;
  std::string phase;  ///< "creation" or "refinement"
  size_t batch = 1;
  size_t queries = 0;
  double queries_per_sec = 0;
  double speedup_vs_1 = 0;
  double predicted_per_query = 0;  ///< cost model, mean over batches
};

/// Runs the first `count` queries of `queries` in batches of `batch`
/// against a fresh index; returns wall seconds and the mean per-query
/// prediction. A tiny fixed δ keeps every measured query inside the
/// creation (pre-convergence) phase at every batch size — the batch-1
/// run performs `count` budgets to a batch-64 run's few, so δ must be
/// small enough that the refined fraction stays negligible in both and
/// the rows compare the same regime.
double RunBatches(IndexBase* index, const std::vector<RangeQuery>& queries,
                  size_t count, size_t batch, double* mean_predicted,
                  size_t start_at = 0) {
  std::vector<QueryResult> results(batch);
  double predicted_sum = 0;
  size_t batches = 0;
  Timer timer;
  for (size_t start = start_at; start < count; start += batch) {
    const size_t nb = std::min(batch, count - start);
    index->QueryBatch(queries.data() + start, nb, results.data());
    predicted_sum += index->last_predicted_cost();
    batches++;
  }
  const double secs = timer.ElapsedSeconds();
  *mean_predicted = batches > 0 ? predicted_sum / static_cast<double>(batches)
                                : 0;
  return secs;
}

void RunCase(const std::string& index_id, const std::string& workload,
             const std::vector<value_t>& values,
             const std::vector<RangeQuery>& queries, size_t count,
             double delta, std::vector<BatchRow>* rows) {
  double base_qps = 0;
  for (const size_t batch : kBatchSizes) {
    // Fresh column + index per batch size: every row starts from the
    // same unindexed state and performs the same count of queries.
    Column column{std::vector<value_t>(values)};
    auto index =
        MakeIndex(index_id, column, BudgetSpec::FixedDelta(delta));
    double mean_predicted = 0;
    const double secs =
        RunBatches(index.get(), queries, count, batch, &mean_predicted);
    BatchRow row;
    row.index_id = index_id;
    row.workload = workload;
    row.phase = "creation";
    row.batch = batch;
    row.queries = count;
    row.queries_per_sec = secs > 0 ? static_cast<double>(count) / secs : 0;
    if (batch == 1) base_qps = row.queries_per_sec;
    row.speedup_vs_1 = base_qps > 0 ? row.queries_per_sec / base_qps : 0;
    row.predicted_per_query = mean_predicted;
    rows->push_back(row);
    std::printf(
        "  %-5s %-9s %-10s batch %-3zu  %10.1f q/s  %5.2fx  pred %.3e s\n",
        index_id.c_str(), workload.c_str(), row.phase.c_str(), batch,
        row.queries_per_sec, row.speedup_vs_1, row.predicted_per_query);
  }
}

/// Refinement-phase (post-creation-onset) rows: each batch size starts
/// from an *identical* mid-refinement state — a fresh index warmed past
/// the creation phase with the same unbatched query stream — then
/// measures the next `count` queries batched. At FixedDelta(d),
/// creation completes after exactly ceil(1/d) budgets, so the warmup
/// length is deterministic; the shared candidate-chain scans of the
/// refinement paths are what these rows isolate.
void RunRefinementCase(const std::string& index_id,
                       const std::string& workload,
                       const std::vector<value_t>& values,
                       const std::vector<RangeQuery>& queries, size_t count,
                       double delta, std::vector<BatchRow>* rows) {
  const size_t warmup =
      static_cast<size_t>(1.0 / delta) + 2;  // past creation for sure
  if (warmup + count > queries.size()) return;
  double base_qps = 0;
  for (const size_t batch : kRefinementBatchSizes) {
    Column column{std::vector<value_t>(values)};
    auto index =
        MakeIndex(index_id, column, BudgetSpec::FixedDelta(delta));
    for (size_t i = 0; i < warmup; i++) index->Query(queries[i]);
    double mean_predicted = 0;
    const double secs = RunBatches(index.get(), queries, warmup + count,
                                   batch, &mean_predicted, warmup);
    BatchRow row;
    row.index_id = index_id;
    row.workload = workload;
    row.phase = "refinement";
    row.batch = batch;
    row.queries = count;
    row.queries_per_sec = secs > 0 ? static_cast<double>(count) / secs : 0;
    if (batch == kRefinementBatchSizes[0]) base_qps = row.queries_per_sec;
    row.speedup_vs_1 = base_qps > 0 ? row.queries_per_sec / base_qps : 0;
    row.predicted_per_query = mean_predicted;
    rows->push_back(row);
    std::printf(
        "  %-5s %-9s %-10s batch %-3zu  %10.1f q/s  %5.2fx  pred %.3e s\n",
        index_id.c_str(), workload.c_str(), row.phase.c_str(), batch,
        row.queries_per_sec, row.speedup_vs_1, row.predicted_per_query);
  }
}

/// Merges the `batch` rows into BENCH_kernels.json through the shared
/// read-merge-write store: every section this tool does not own
/// (micro_kernels' kernel/tier/thread rows, anything future) passes
/// through untouched, in either run order.
void WriteBatchJson(const char* path, const std::vector<BatchRow>& rows) {
  std::vector<bench::JsonSection> sections = bench::ReadJsonSections(path);
  std::string raw = "[\n";
  for (size_t i = 0; i < rows.size(); i++) {
    const BatchRow& r = rows[i];
    bench::AppendF(
        &raw,
        "    {\"index\": \"%s\", \"workload\": \"%s\", \"phase\": \"%s\", "
        "\"batch\": %zu, \"queries\": %zu, \"queries_per_sec\": %.1f, "
        "\"speedup_vs_batch1\": %.3f, \"predicted_per_query_secs\": "
        "%.4e}%s\n",
        r.index_id.c_str(), r.workload.c_str(), r.phase.c_str(), r.batch,
        r.queries, r.queries_per_sec, r.speedup_vs_1, r.predicted_per_query,
        i + 1 < rows.size() ? "," : "");
  }
  raw += "  ]";
  bench::UpsertJsonSection(&sections, "batch", std::move(raw));
  if (!bench::WriteJsonSections(path, sections)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::printf("batch throughput rows -> %s\n", path);
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) {
  using namespace progidx;
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  // Bigger default column than the other drivers: the shared-scan win
  // is a memory-bandwidth effect, so the scan must not fit in cache.
  cli.AddFlag("n", "2000000", "column size");
  cli.AddFlag("json", "BENCH_kernels.json", "merged JSON output path");
  cli.AddFlag("delta", "0.001", "fixed per-query indexing fraction");
  if (!cli.Parse(argc, argv)) return 0;
  const size_t n = static_cast<size_t>(cli.GetInt("n"));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed"));
  const double delta = cli.GetDouble("delta");
  // Enough queries for stable timing, few enough that the default δ
  // keeps even the batch-1 run deep in the creation phase.
  const size_t count =
      std::min<size_t>(static_cast<size_t>(cli.GetInt("queries")), 96);

  std::vector<BatchRow> rows;
  // Uniform random data + random range queries (§4.1 selectivity).
  {
    Column column = MakeUniformColumn(n, seed);
    // δ for the refinement rows: big enough that the unbatched warmup
    // (ceil(1/δ) + 2 queries) stays cheap, small enough that the
    // measured window stays inside the refinement phase.
    const double refine_delta = 0.02;
    const size_t refine_warmup =
        static_cast<size_t>(1.0 / refine_delta) + 2;
    const std::vector<RangeQuery> queries = WorkloadGenerator::Generate(
        WorkloadPattern::kRandom, column.min_value(), column.max_value(),
        std::max<size_t>(refine_warmup + count, 1), 0.1, seed + 13);
    const std::vector<value_t> values = column.values();
    std::printf("uniform n=%zu, %zu pre-convergence queries:\n", n, count);
    for (const std::string& id : {std::string("pq"), std::string("pb"),
                                  std::string("plsd"), std::string("pmsd"),
                                  std::string("fs")}) {
      RunCase(id, "uniform", values, queries, count, delta, &rows);
    }
    std::printf("uniform n=%zu, %zu refinement-phase queries "
                "(post-creation-onset, delta=%g):\n",
                n, count, refine_delta);
    for (const std::string& id : {std::string("pq"), std::string("pb"),
                                  std::string("plsd"),
                                  std::string("pmsd")}) {
      RunRefinementCase(id, "uniform", values, queries, count, refine_delta,
                        &rows);
    }
  }
  // SkyServer data + query log.
  {
    const bench::SkyServerBench sky = bench::MakeSkyServerBench(cli);
    const std::vector<value_t> values = sky.column.values();
    const size_t sky_count = std::min(count, sky.queries.size());
    std::printf("skyserver n=%zu, %zu pre-convergence queries:\n",
                sky.column.size(), sky_count);
    for (const std::string& id : {std::string("pq"), std::string("pb"),
                                  std::string("plsd"), std::string("pmsd"),
                                  std::string("fs")}) {
      RunCase(id, "skyserver", values, sky.queries, sky_count, delta, &rows);
    }
  }
  WriteBatchJson(cli.GetString("json").c_str(), rows);

  // The decision tree's view: per-query pre-convergence cost under
  // batching for the recommended technique on uniform range queries.
  CostModel model(GlobalMachineConstants(), n);
  Scenario scenario;
  scenario.distribution = DataDistribution::kUniform;
  std::printf("\ncost model: pre-convergence per-query secs (uniform, "
              "delta=%g)\n", delta);
  for (const size_t batch : kBatchSizes) {
    scenario.concurrent_queries = batch;
    std::printf("  batch %-3zu -> %.4e s/query\n", batch,
                PreConvergencePerQuerySecs(scenario, model, delta));
  }
  return 0;
}
