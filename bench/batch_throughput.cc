// Shared-scan batch throughput: queries/sec vs batch size (1/4/16/64)
// on the uniform random workload and the SkyServer log, during the
// *pre-convergence* phase (the regime the batch executor targets: the
// unrefined remainder dominates, so one shared scan replaces up to B
// per-query scans while the index still advances one budget per batch).
//
// Emits `batch` rows (queries_per_sec, speedup over batch 1, and the
// cost model's per-query prediction) merged into BENCH_kernels.json
// next to the kernel/thread rows micro_kernels writes, plus a stdout
// table and optional CSV.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/decision_tree.h"
#include "exec/query_batch.h"

namespace progidx {
namespace {

constexpr size_t kBatchSizes[] = {1, 4, 16, 64};

struct BatchRow {
  std::string index_id;
  std::string workload;
  size_t batch = 1;
  size_t queries = 0;
  double queries_per_sec = 0;
  double speedup_vs_1 = 0;
  double predicted_per_query = 0;  ///< cost model, mean over batches
};

/// Runs the first `count` queries of `queries` in batches of `batch`
/// against a fresh index; returns wall seconds and the mean per-query
/// prediction. A tiny fixed δ keeps every measured query inside the
/// creation (pre-convergence) phase at every batch size — the batch-1
/// run performs `count` budgets to a batch-64 run's few, so δ must be
/// small enough that the refined fraction stays negligible in both and
/// the rows compare the same regime.
double RunBatches(IndexBase* index, const std::vector<RangeQuery>& queries,
                  size_t count, size_t batch, double* mean_predicted) {
  std::vector<QueryResult> results(batch);
  double predicted_sum = 0;
  size_t batches = 0;
  Timer timer;
  for (size_t start = 0; start < count; start += batch) {
    const size_t nb = std::min(batch, count - start);
    index->QueryBatch(queries.data() + start, nb, results.data());
    predicted_sum += index->last_predicted_cost();
    batches++;
  }
  const double secs = timer.ElapsedSeconds();
  *mean_predicted = batches > 0 ? predicted_sum / static_cast<double>(batches)
                                : 0;
  return secs;
}

void RunCase(const std::string& index_id, const std::string& workload,
             const std::vector<value_t>& values,
             const std::vector<RangeQuery>& queries, size_t count,
             double delta, std::vector<BatchRow>* rows) {
  double base_qps = 0;
  for (const size_t batch : kBatchSizes) {
    // Fresh column + index per batch size: every row starts from the
    // same unindexed state and performs the same count of queries.
    Column column{std::vector<value_t>(values)};
    auto index =
        MakeIndex(index_id, column, BudgetSpec::FixedDelta(delta));
    double mean_predicted = 0;
    const double secs =
        RunBatches(index.get(), queries, count, batch, &mean_predicted);
    BatchRow row;
    row.index_id = index_id;
    row.workload = workload;
    row.batch = batch;
    row.queries = count;
    row.queries_per_sec = secs > 0 ? static_cast<double>(count) / secs : 0;
    if (batch == 1) base_qps = row.queries_per_sec;
    row.speedup_vs_1 = base_qps > 0 ? row.queries_per_sec / base_qps : 0;
    row.predicted_per_query = mean_predicted;
    rows->push_back(row);
    std::printf("  %-5s %-9s batch %-3zu  %10.1f q/s  %5.2fx  pred %.3e s\n",
                index_id.c_str(), workload.c_str(), batch,
                row.queries_per_sec, row.speedup_vs_1,
                row.predicted_per_query);
  }
}

/// Merges the `batch` rows into BENCH_kernels.json: keeps whatever
/// micro_kernels wrote, replaces any previous batch section (always the
/// last key), or creates a minimal file when none exists.
void WriteBatchJson(const char* path, const std::vector<BatchRow>& rows) {
  std::string existing;
  if (std::FILE* f = std::fopen(path, "r")) {
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      existing.append(buf, got);
    }
    std::fclose(f);
  }
  std::string head;
  const size_t batch_key = existing.find(",\n  \"batch\": [");
  if (batch_key != std::string::npos) {
    head = existing.substr(0, batch_key);  // drop the stale batch section
    head += "\n}\n";
  } else {
    head = existing;
  }
  const size_t close = head.rfind('}');
  if (close == std::string::npos) {
    head = "{\n  \"elements\": 0\n}\n";  // no prior file: minimal shell
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const size_t cut = head.rfind('}');
  std::fwrite(head.data(), 1, cut, f);
  // Trim trailing whitespace/newlines before the closing brace.
  long end = static_cast<long>(cut);
  while (end > 0 && (head[end - 1] == '\n' || head[end - 1] == ' ')) end--;
  std::fseek(f, 0, SEEK_SET);
  std::fwrite(head.data(), 1, static_cast<size_t>(end), f);
  std::fprintf(f, ",\n  \"batch\": [\n");
  for (size_t i = 0; i < rows.size(); i++) {
    const BatchRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"index\": \"%s\", \"workload\": \"%s\", \"batch\": %zu, "
        "\"queries\": %zu, \"queries_per_sec\": %.1f, "
        "\"speedup_vs_batch1\": %.3f, \"predicted_per_query_secs\": "
        "%.4e}%s\n",
        r.index_id.c_str(), r.workload.c_str(), r.batch, r.queries,
        r.queries_per_sec, r.speedup_vs_1, r.predicted_per_query,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("batch throughput rows -> %s\n", path);
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) {
  using namespace progidx;
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  // Bigger default column than the other drivers: the shared-scan win
  // is a memory-bandwidth effect, so the scan must not fit in cache.
  cli.AddFlag("n", "2000000", "column size");
  cli.AddFlag("json", "BENCH_kernels.json", "merged JSON output path");
  cli.AddFlag("delta", "0.001", "fixed per-query indexing fraction");
  if (!cli.Parse(argc, argv)) return 0;
  const size_t n = static_cast<size_t>(cli.GetInt("n"));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed"));
  const double delta = cli.GetDouble("delta");
  // Enough queries for stable timing, few enough that the default δ
  // keeps even the batch-1 run deep in the creation phase.
  const size_t count =
      std::min<size_t>(static_cast<size_t>(cli.GetInt("queries")), 96);

  std::vector<BatchRow> rows;
  // Uniform random data + random range queries (§4.1 selectivity).
  {
    Column column = MakeUniformColumn(n, seed);
    const std::vector<RangeQuery> queries = WorkloadGenerator::Generate(
        WorkloadPattern::kRandom, column.min_value(), column.max_value(),
        std::max<size_t>(count, 1), 0.1, seed + 13);
    const std::vector<value_t> values = column.values();
    std::printf("uniform n=%zu, %zu pre-convergence queries:\n", n, count);
    for (const std::string& id : {std::string("pq"), std::string("pb"),
                                  std::string("plsd"), std::string("pmsd"),
                                  std::string("fs")}) {
      RunCase(id, "uniform", values, queries, count, delta, &rows);
    }
  }
  // SkyServer data + query log.
  {
    const bench::SkyServerBench sky = bench::MakeSkyServerBench(cli);
    const std::vector<value_t> values = sky.column.values();
    const size_t sky_count = std::min(count, sky.queries.size());
    std::printf("skyserver n=%zu, %zu pre-convergence queries:\n",
                sky.column.size(), sky_count);
    for (const std::string& id : {std::string("pq"), std::string("pb"),
                                  std::string("plsd"), std::string("pmsd"),
                                  std::string("fs")}) {
      RunCase(id, "skyserver", values, sky.queries, sky_count, delta, &rows);
    }
  }
  WriteBatchJson(cli.GetString("json").c_str(), rows);

  // The decision tree's view: per-query pre-convergence cost under
  // batching for the recommended technique on uniform range queries.
  CostModel model(GlobalMachineConstants(), n);
  Scenario scenario;
  scenario.distribution = DataDistribution::kUniform;
  std::printf("\ncost model: pre-convergence per-query secs (uniform, "
              "delta=%g)\n", delta);
  for (const size_t batch : kBatchSizes) {
    scenario.concurrent_queries = batch;
    std::printf("  batch %-3zu -> %.4e s/query\n", batch,
                PreConvergencePerQuerySecs(scenario, model, delta));
  }
  return 0;
}
