// Table 2: the full SkyServer comparison — baselines (FS, FI), adaptive
// indexing (STD, STC, PSTC, CGI, AA) and progressive indexing (PQ,
// PMSD, PLSD, PB) — on first-query cost, convergence, robustness
// (variance of the first 100 queries) and cumulative time.

#include "bench/bench_util.h"
#include "eval/report.h"

namespace progidx {
namespace {

int Run(int argc, char** argv) {
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  if (!cli.Parse(argc, argv)) return 0;

  const bench::SkyServerBench bench = bench::MakeSkyServerBench(cli);
  std::printf("=== Table 2: SkyServer results (n=%zu, %zu queries, "
              "t_budget=0.2*t_scan) ===\n",
              bench.column.size(), bench.queries.size());
  TableReport report({"index", "first_q_s", "convergence", "robustness",
                      "cumulative_s"});
  for (const std::string& id : AllIndexIds()) {
    auto index = MakeIndex(id, bench.column, BudgetSpec::Adaptive(0.2));
    const Metrics metrics = RunWorkload(index.get(), bench.queries);
    report.AddRow(
        {index->name(), TableReport::FormatSecs(metrics.FirstQuerySecs()),
         TableReport::FormatCount(metrics.ConvergenceQuery()),
         TableReport::FormatSci(metrics.RobustnessVariance(100)),
         TableReport::FormatSecs(metrics.CumulativeSecs())});
  }
  report.Print();
  const std::string csv = cli.GetString("csv");
  if (!csv.empty()) report.WriteCsv(csv);
  return 0;
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) { return progidx::Run(argc, argv); }
