// Figure 10: per-query execution time on SkyServer — Progressive
// Quicksort (adaptive budget) vs the best adaptive-indexing baselines
// (Adaptive Adaptive for cumulative time, Progressive Stochastic 10%
// for first-query cost/robustness). Progressive Quicksort holds a flat
// 1.2x-scan line until convergence, then drops to index cost; the
// adaptive baselines start high and keep spiking.

#include "bench/bench_util.h"
#include "eval/report.h"

namespace progidx {
namespace {

bool LogSampled(size_t query_number) {
  size_t scale = 1;
  while (query_number > 10 * scale) scale *= 10;
  return query_number % scale == 0;
}

int Run(int argc, char** argv) {
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  if (!cli.Parse(argc, argv)) return 0;

  const bench::SkyServerBench bench = bench::MakeSkyServerBench(cli);
  const double scan_secs = bench::MeasuredScanSecs(bench.column);
  std::printf("=== Figure 10: P. Quicksort vs adaptive indexing "
              "(SkyServer, n=%zu; 1.2x scan = %s) ===\n",
              bench.column.size(),
              TableReport::FormatSecs(1.2 * scan_secs).c_str());

  TableReport report({"algorithm", "query", "time_s"});
  for (const std::string& id : {std::string("pq"), std::string("aa"),
                                std::string("pstc")}) {
    auto index = MakeIndex(id, bench.column, BudgetSpec::Adaptive(0.2));
    const Metrics metrics = RunWorkload(index.get(), bench.queries);
    double max_after_first = 0;
    for (size_t i = 0; i < metrics.records().size(); i++) {
      if (LogSampled(i + 1)) {
        report.AddRow({index->name(),
                       TableReport::FormatCount(static_cast<int64_t>(i) + 1),
                       TableReport::FormatSecs(metrics.records()[i].secs)});
      }
      if (i > 0) {
        max_after_first =
            std::max(max_after_first, metrics.records()[i].secs);
      }
    }
    std::printf("%-24s first=%s max_after_first=%s cumulative=%s\n",
                index->name().c_str(),
                TableReport::FormatSecs(metrics.FirstQuerySecs()).c_str(),
                TableReport::FormatSecs(max_after_first).c_str(),
                TableReport::FormatSecs(metrics.CumulativeSecs()).c_str());
  }
  report.Print();
  const std::string csv = cli.GetString("csv");
  if (!csv.empty()) report.WriteCsv(csv);
  return 0;
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) { return progidx::Run(argc, argv); }
