// Serving-layer throughput: queries/sec and p50/p99 client latency vs
// client count (1/2/4/8) against one shared progressive index behind
// the epoch scheduler (docs/serving.md), plus an overload-shedding
// curve: a deliberately tiny admission queue driven through TrySubmit
// at increasing offered load, reporting the shed fraction and the
// degraded fraction under a per-query deadline.
//
// Emits a `serving` section merged into BENCH_kernels.json through the
// shared read-merge-write store — micro_kernels' and
// batch_throughput's sections pass through untouched in any run order
// — plus a stdout table.
//
// Two further modes ride along:
//   open_loop — fixed-rate arrivals over a timed window (offered load
//     swept, or pinned with PROGIDX_ARRIVAL_QPS). Latency is measured
//     from each query's *scheduled* arrival, not from when a worker
//     got around to submitting it, so queueing delay shows up in
//     p50/p99 instead of being coordinated-omitted away.
//   checkpoint — durability costs (docs/recovery.md): snapshot bytes
//     and write ms for the served index, and cold recovery-replay ms
//     as a function of admitted-log length.
//
// PROGIDX_CLIENTS overrides the client counts swept (a single value);
// PROGIDX_DEADLINE_US applies a per-query deadline to the throughput
// sweep as well. PROGIDX_FAULT makes the fault seams live here too —
// useful for eyeballing how much service degrades under each mode.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_store.h"
#include "common/env.h"
#include "common/timer.h"
#include "eval/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/calibration_store.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "serve/recovery.h"
#include "serve/server.h"
#include "workload/data_generator.h"
#include "workload/synthetic.h"

namespace progidx {
namespace {

struct ServeRow {
  std::string index_id;
  std::string mode;  ///< "throughput", "overload", "open_loop", "checkpoint"
  size_t clients = 0;
  size_t queries = 0;
  double queries_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double shed_frac = 0;
  double degraded_frac = 0;
  double read_epoch_frac = 0;
  double offered_qps = 0;      ///< open_loop: the fixed arrival rate
  size_t snapshot_bytes = 0;   ///< checkpoint: published snapshot size
  double ckpt_write_ms = 0;    ///< checkpoint: snapshot publish time
  double replay_ms = 0;        ///< checkpoint: cold replay of the log
};

/// One throughput point: `clients` threads drive `per_client` blocking
/// submits each against a fresh index behind a fresh server. Latency
/// quantiles come from the shared obs histogram (bench::LatencyRecorder)
/// — the same bucket layout Server::DumpMetrics exposes.
ServeRow RunThroughput(const std::string& index_id, const Column& column,
                       const std::vector<RangeQuery>& queries, size_t clients,
                       size_t per_client, const serve::ServerConfig& config) {
  auto index = MakeIndex(index_id, column, BudgetSpec::FixedDelta(0.05));
  serve::Server server(index.get(), column, config);
  std::vector<bench::LatencyRecorder> lat(clients);
  std::vector<std::thread> threads;
  Timer timer;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = 0; i < per_client; ++i) {
        const RangeQuery& q = queries[(c * per_client + i) % queries.size()];
        Timer t;
        server.Submit(q);
        lat[c].RecordNs(static_cast<uint64_t>(t.ElapsedNanos()));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = timer.ElapsedSeconds();
  const serve::ServeStats stats = server.stats();

  bench::LatencyRecorder all;
  for (const bench::LatencyRecorder& r : lat) all.MergeFrom(r);
  ServeRow row;
  row.index_id = index_id;
  row.mode = "throughput";
  row.clients = clients;
  row.queries = clients * per_client;
  row.queries_per_sec =
      secs > 0 ? static_cast<double>(row.queries) / secs : 0;
  row.p50_us = all.PercentileUs(0.50);
  row.p99_us = all.PercentileUs(0.99);
  const double total = static_cast<double>(stats.submitted);
  row.degraded_frac = total > 0 ? static_cast<double>(stats.degraded) / total
                                : 0;
  row.read_epoch_frac =
      total > 0 ? static_cast<double>(stats.read_epoch) / total : 0;
  return row;
}

/// One overload point: `clients` threads hammer TrySubmit against a
/// tiny queue; refused queries are shed (counted, not retried) — the
/// load-shedding curve.
ServeRow RunOverload(const std::string& index_id, const Column& column,
                     const std::vector<RangeQuery>& queries, size_t clients,
                     size_t per_client) {
  auto index = MakeIndex(index_id, column, BudgetSpec::FixedDelta(0.05));
  serve::ServerConfig config;
  config.queue_capacity = 2;
  config.batch_size = 2;
  serve::Server server(index.get(), column, config);
  std::vector<std::thread> threads;
  Timer timer;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Response resp;
      for (size_t i = 0; i < per_client; ++i) {
        const RangeQuery& q = queries[(c * per_client + i) % queries.size()];
        server.TrySubmit(q, &resp);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = timer.ElapsedSeconds();
  const serve::ServeStats stats = server.stats();

  ServeRow row;
  row.index_id = index_id;
  row.mode = "overload";
  row.clients = clients;
  row.queries = clients * per_client;
  row.queries_per_sec =
      secs > 0 ? static_cast<double>(stats.served + stats.read_epoch) / secs
               : 0;
  const double total = static_cast<double>(stats.submitted);
  row.shed_frac = total > 0 ? static_cast<double>(stats.shed) / total : 0;
  row.degraded_frac = total > 0 ? static_cast<double>(stats.degraded) / total
                                : 0;
  row.read_epoch_frac =
      total > 0 ? static_cast<double>(stats.read_epoch) / total : 0;
  return row;
}

/// One open-loop point: arrivals are *scheduled* at a fixed rate over a
/// timed window, and a small worker pool dispatches them as they come
/// due. Latency runs from the scheduled arrival to the answer, so a
/// server that falls behind the offered load accumulates visible
/// queueing delay instead of silently slowing the arrival clock
/// (coordinated omission).
ServeRow RunOpenLoop(const std::string& index_id, const Column& column,
                     const std::vector<RangeQuery>& queries, double qps,
                     double window_secs, const serve::ServerConfig& config) {
  auto index = MakeIndex(index_id, column, BudgetSpec::FixedDelta(0.05));
  serve::Server server(index.get(), column, config);
  const size_t total =
      std::max<size_t>(1, static_cast<size_t>(qps * window_secs));
  constexpr size_t kWorkers = 8;
  std::atomic<size_t> next{0};
  std::vector<bench::LatencyRecorder> lat(kWorkers);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  Timer timer;
  for (size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= total) return;
        const auto scheduled =
            start + std::chrono::nanoseconds(static_cast<int64_t>(
                        1e9 * static_cast<double>(i) / qps));
        std::this_thread::sleep_until(scheduled);
        server.Submit(queries[i % queries.size()]);
        lat[w].RecordSecs(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - scheduled)
                              .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = timer.ElapsedSeconds();
  const serve::ServeStats stats = server.stats();

  bench::LatencyRecorder all;
  for (const bench::LatencyRecorder& r : lat) all.MergeFrom(r);
  ServeRow row;
  row.index_id = index_id;
  row.mode = "open_loop";
  row.clients = kWorkers;
  row.queries = total;
  row.offered_qps = qps;
  row.queries_per_sec = secs > 0 ? static_cast<double>(total) / secs : 0;
  row.p50_us = all.PercentileUs(0.50);
  row.p99_us = all.PercentileUs(0.99);
  const double submitted = static_cast<double>(stats.submitted);
  row.degraded_frac =
      submitted > 0 ? static_cast<double>(stats.degraded) / submitted : 0;
  row.read_epoch_frac =
      submitted > 0 ? static_cast<double>(stats.read_epoch) / submitted : 0;
  return row;
}

/// One checkpoint point (docs/recovery.md): a durable admitted log of
/// `log_len` queries is written, cold recovery over it is timed, and a
/// snapshot of the recovered index is published and sized — the
/// snapshot-write vs replay-time tradeoff PROGIDX_CHECKPOINT_EVERY
/// tunes.
ServeRow RunCheckpoint(const std::string& index_id, const Column& column,
                       const std::vector<RangeQuery>& queries,
                       size_t log_len) {
  ServeRow row;
  row.index_id = index_id;
  row.mode = "checkpoint";
  row.queries = log_len;

  char tmpl[] = "/tmp/progidx_bench_ckpt_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) return row;
  {
    persist::WalWriter wal;
    if (!wal.Open(std::string(dir) + "/wal")) return row;
    constexpr size_t kEpoch = 16;
    std::vector<ServeRequest> ops;
    for (size_t i = 0; i < log_len; i += kEpoch) {
      const size_t off = i % queries.size();
      const size_t count =
          std::min({kEpoch, log_len - i, queries.size() - off});
      ops.assign(queries.begin() + off, queries.begin() + off + count);
      wal.AppendEpoch(i, ops.data(), ops.size());
    }
    wal.Close();
  }

  auto make_fresh = [&](const MachineConstants& mc) {
    ProgressiveOptions opt;
    opt.machine = &mc;
    return MakeIndex(index_id, column, BudgetSpec::FixedDelta(0.05), opt);
  };
  serve::RecoveryStats stats;
  Timer replay_timer;
  auto recovered = serve::RecoverIndex(dir, column, make_fresh, &stats);
  row.replay_ms = replay_timer.ElapsedSeconds() * 1e3;

  if (recovered->SupportsPersistence()) {
    persist::Checkpointer ckpt(dir, column);
    persist::SnapshotMeta meta;
    meta.applied_queries = stats.replayed_queries;
    if (const MachineConstants* mc = recovered->machine_constants()) {
      meta.calibration_crc = persist::CalibrationFingerprint(*mc);
    }
    Timer write_timer;
    if (ckpt.Save(*recovered, meta)) {
      row.ckpt_write_ms = write_timer.ElapsedSeconds() * 1e3;
      row.snapshot_bytes = ckpt.last_snapshot_bytes();
    }
  }
  const std::string cleanup = std::string("rm -rf ") + dir;
  (void)std::system(cleanup.c_str());
  return row;
}

/// Telemetry overhead, measured (docs/observability.md "Overhead
/// budget"): the same blocking-throughput point under three telemetry
/// configurations — everything off, metrics on / tracing off (the
/// production default this code ships with), and metrics + tracing on.
/// Best-of-3 q/s per config so scheduler noise does not masquerade as
/// overhead. The budget line is tracing-off: metrics-on q/s must be
/// within 2% of telemetry-off q/s.
struct ObsOverhead {
  size_t clients = 0;
  size_t queries = 0;
  double qps_off = 0;
  double qps_metrics = 0;
  double qps_trace = 0;
  /// (qps_off - qps_metrics) / qps_off; negative values are run noise.
  double tracing_off_overhead_frac = 0;
};

ObsOverhead RunObsOverhead(const std::string& index_id, const Column& column,
                           const std::vector<RangeQuery>& queries,
                           size_t clients, size_t per_client,
                           const serve::ServerConfig& config) {
  auto best_of_3 = [&] {
    double best = 0;
    for (int rep = 0; rep < 3; rep++) {
      best = std::max(best, RunThroughput(index_id, column, queries, clients,
                                          per_client, config)
                                .queries_per_sec);
    }
    return best;
  };

  ObsOverhead o;
  o.clients = clients;
  o.queries = clients * per_client;
  const bool metrics_before = obs::MetricsEnabled();
  const bool trace_before = obs::TracingEnabled();
  const std::string path_before = obs::TracePath();

  obs::SetMetricsEnabledForTesting(false);
  if (trace_before) obs::DisableTracing();
  o.qps_off = best_of_3();

  obs::SetMetricsEnabledForTesting(true);
  o.qps_metrics = best_of_3();

  const std::string trace_path = "/tmp/progidx_bench_overhead_trace.json";
  obs::EnableTracing(trace_path);
  o.qps_trace = best_of_3();
  obs::FlushTrace();
  obs::DisableTracing();
  std::remove(trace_path.c_str());

  obs::SetMetricsEnabledForTesting(metrics_before);
  if (trace_before) obs::EnableTracing(path_before);
  o.tracing_off_overhead_frac =
      o.qps_off > 0 ? (o.qps_off - o.qps_metrics) / o.qps_off : 0;
  return o;
}

void PrintRows(const std::vector<ServeRow>& rows) {
  std::printf("%-6s %-10s %8s %8s %12s %9s %9s %6s %9s %6s\n", "index",
              "mode", "clients", "queries", "q/s", "p50us", "p99us", "shed",
              "degraded", "read");
  for (const ServeRow& r : rows) {
    if (r.mode == "checkpoint") {
      std::printf("%-6s %-10s log=%zu snapshot=%zuB write=%.2fms "
                  "replay=%.2fms\n",
                  r.index_id.c_str(), r.mode.c_str(), r.queries,
                  r.snapshot_bytes, r.ckpt_write_ms, r.replay_ms);
      continue;
    }
    std::printf("%-6s %-10s %8zu %8zu %12.1f %9.1f %9.1f %5.1f%% %8.1f%% "
                "%5.1f%%",
                r.index_id.c_str(), r.mode.c_str(), r.clients, r.queries,
                r.queries_per_sec, r.p50_us, r.p99_us, r.shed_frac * 100,
                r.degraded_frac * 100, r.read_epoch_frac * 100);
    if (r.mode == "open_loop") std::printf("  offered=%.0f/s", r.offered_qps);
    std::printf("\n");
  }
}

/// Merges the `serving` rows into BENCH_kernels.json; every section
/// this tool does not own passes through untouched.
void WriteServingJson(const char* path, const std::vector<ServeRow>& rows) {
  std::vector<bench::JsonSection> sections = bench::ReadJsonSections(path);
  std::string raw = "[\n";
  for (size_t i = 0; i < rows.size(); i++) {
    const ServeRow& r = rows[i];
    const char* sep = i + 1 < rows.size() ? "," : "";
    if (r.mode == "checkpoint") {
      bench::AppendF(
          &raw,
          "    {\"index\": \"%s\", \"mode\": \"checkpoint\", "
          "\"log_queries\": %zu, \"snapshot_bytes\": %zu, "
          "\"write_ms\": %.3f, \"replay_ms\": %.3f}%s\n",
          r.index_id.c_str(), r.queries, r.snapshot_bytes, r.ckpt_write_ms,
          r.replay_ms, sep);
      continue;
    }
    bench::AppendF(
        &raw,
        "    {\"index\": \"%s\", \"mode\": \"%s\", \"clients\": %zu, "
        "\"queries\": %zu, \"queries_per_sec\": %.1f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f, \"shed_frac\": %.4f, \"degraded_frac\": %.4f, "
        "\"read_epoch_frac\": %.4f",
        r.index_id.c_str(), r.mode.c_str(), r.clients, r.queries,
        r.queries_per_sec, r.p50_us, r.p99_us, r.shed_frac, r.degraded_frac,
        r.read_epoch_frac);
    if (r.mode == "open_loop") {
      bench::AppendF(&raw, ", \"offered_qps\": %.1f", r.offered_qps);
    }
    bench::AppendF(&raw, "}%s\n", sep);
  }
  raw += "  ]";
  bench::UpsertJsonSection(&sections, "serving", std::move(raw));
  if (!bench::WriteJsonSections(path, sections)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::printf("serving rows -> %s\n", path);
}

/// Merges the `observability` overhead row into BENCH_kernels.json.
void WriteObservabilityJson(const char* path, const std::string& index_id,
                            const ObsOverhead& o) {
  std::vector<bench::JsonSection> sections = bench::ReadJsonSections(path);
  std::string raw = "[\n";
  bench::AppendF(
      &raw,
      "    {\"index\": \"%s\", \"clients\": %zu, \"queries\": %zu, "
      "\"qps_telemetry_off\": %.1f, \"qps_metrics_on\": %.1f, "
      "\"qps_metrics_and_trace_on\": %.1f, "
      "\"tracing_off_overhead_frac\": %.4f, \"budget_frac\": 0.02}\n",
      index_id.c_str(), o.clients, o.queries, o.qps_off, o.qps_metrics,
      o.qps_trace, o.tracing_off_overhead_frac);
  raw += "  ]";
  bench::UpsertJsonSection(&sections, "observability", std::move(raw));
  if (!bench::WriteJsonSections(path, sections)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::printf("observability row -> %s\n", path);
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) {
  using namespace progidx;
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  cli.AddFlag("json", "BENCH_kernels.json", "merged JSON output path");
  cli.AddFlag("index", "pq", "index id served (see eval/registry.h)");
  cli.AddFlag("per-client", "400", "blocking submits per client thread");
  if (!cli.Parse(argc, argv)) return 0;
  const size_t n = static_cast<size_t>(
      cli.GetIntInRange("n", 1, static_cast<int64_t>(1) << 32));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed"));
  const size_t per_client = static_cast<size_t>(
      cli.GetIntInRange("per-client", 1, 1 << 24));
  const std::string index_id = cli.GetString("index");

  const Column column = MakeUniformColumn(n, seed);
  const std::vector<RangeQuery> queries = WorkloadGenerator::Generate(
      WorkloadPattern::kRandom, column.min_value(), column.max_value(),
      4096, 0.05, seed + 13);

  // PROGIDX_CLIENTS pins the sweep to one client count.
  const size_t forced = env::BoundedSizeFromEnv(
      "PROGIDX_CLIENTS", 1, 64, 0, "client thread count", "full 1/2/4/8 sweep");
  std::vector<size_t> client_counts = {1, 2, 4, 8};
  if (forced != 0) client_counts = {forced};

  const serve::ServerConfig config = serve::ServerConfig::FromEnv();
  std::vector<ServeRow> rows;
  std::printf("serving %s, n=%zu, %zu submits/client:\n", index_id.c_str(), n,
              per_client);
  for (const size_t clients : client_counts) {
    rows.push_back(RunThroughput(index_id, column, queries, clients,
                                 per_client, config));
  }
  for (const size_t clients : client_counts) {
    rows.push_back(RunOverload(index_id, column, queries, clients,
                               per_client));
  }
  // Open loop: PROGIDX_ARRIVAL_QPS pins one offered rate, otherwise a
  // small sweep maps latency vs offered load around saturation.
  const size_t forced_qps = env::BoundedSizeFromEnv(
      "PROGIDX_ARRIVAL_QPS", 1, 1 << 24, 0, "open-loop arrival rate",
      "1k/4k/16k sweep");
  std::vector<double> rates = {1000, 4000, 16000};
  if (forced_qps != 0) rates = {static_cast<double>(forced_qps)};
  for (const double qps : rates) {
    rows.push_back(
        RunOpenLoop(index_id, column, queries, qps, /*window_secs=*/1.0,
                    config));
  }
  // Durability costs vs admitted-log length.
  for (const size_t log_len : {size_t{512}, size_t{2048}}) {
    rows.push_back(RunCheckpoint(index_id, column, queries, log_len));
  }
  PrintRows(rows);
  WriteServingJson(cli.GetString("json").c_str(), rows);

  // Telemetry overhead rows (docs/observability.md): three configs at
  // a fixed client count, best-of-3 each.
  const ObsOverhead o =
      RunObsOverhead(index_id, column, queries, /*clients=*/4, per_client,
                     config);
  std::printf(
      "observability: off=%.1f q/s metrics=%.1f q/s metrics+trace=%.1f q/s "
      "tracing-off overhead=%.2f%% (budget 2%%)\n",
      o.qps_off, o.qps_metrics, o.qps_trace,
      o.tracing_off_overhead_frac * 100);
  WriteObservabilityJson(cli.GetString("json").c_str(), index_id, o);
  return 0;
}
