// Serving-layer throughput: queries/sec and p50/p99 client latency vs
// client count (1/2/4/8) against one shared progressive index behind
// the epoch scheduler (docs/serving.md), plus an overload-shedding
// curve: a deliberately tiny admission queue driven through TrySubmit
// at increasing offered load, reporting the shed fraction and the
// degraded fraction under a per-query deadline.
//
// Emits a `serving` section merged into BENCH_kernels.json through the
// shared read-merge-write store — micro_kernels' and
// batch_throughput's sections pass through untouched in any run order
// — plus a stdout table.
//
// PROGIDX_CLIENTS overrides the client counts swept (a single value);
// PROGIDX_DEADLINE_US applies a per-query deadline to the throughput
// sweep as well. PROGIDX_FAULT makes the fault seams live here too —
// useful for eyeballing how much service degrades under each mode.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_store.h"
#include "common/env.h"
#include "common/timer.h"
#include "eval/registry.h"
#include "serve/server.h"
#include "workload/data_generator.h"
#include "workload/synthetic.h"

namespace progidx {
namespace {

struct ServeRow {
  std::string index_id;
  std::string mode;  ///< "throughput" or "overload"
  size_t clients = 0;
  size_t queries = 0;
  double queries_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double shed_frac = 0;
  double degraded_frac = 0;
  double read_epoch_frac = 0;
};

double PercentileUs(std::vector<double>* lat, double p) {
  if (lat->empty()) return 0;
  std::sort(lat->begin(), lat->end());
  const size_t i = std::min(
      lat->size() - 1,
      static_cast<size_t>(p * static_cast<double>(lat->size() - 1)));
  return (*lat)[i];
}

/// One throughput point: `clients` threads drive `per_client` blocking
/// submits each against a fresh index behind a fresh server.
ServeRow RunThroughput(const std::string& index_id, const Column& column,
                       const std::vector<RangeQuery>& queries, size_t clients,
                       size_t per_client, const serve::ServerConfig& config) {
  auto index = MakeIndex(index_id, column, BudgetSpec::FixedDelta(0.05));
  serve::Server server(index.get(), column, config);
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  Timer timer;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(per_client);
      for (size_t i = 0; i < per_client; ++i) {
        const RangeQuery& q = queries[(c * per_client + i) % queries.size()];
        Timer t;
        server.Submit(q);
        lat[c].push_back(t.ElapsedSeconds() * 1e6);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = timer.ElapsedSeconds();
  const serve::ServeStats stats = server.stats();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  ServeRow row;
  row.index_id = index_id;
  row.mode = "throughput";
  row.clients = clients;
  row.queries = clients * per_client;
  row.queries_per_sec =
      secs > 0 ? static_cast<double>(row.queries) / secs : 0;
  row.p50_us = PercentileUs(&all, 0.50);
  row.p99_us = PercentileUs(&all, 0.99);
  const double total = static_cast<double>(stats.submitted);
  row.degraded_frac = total > 0 ? static_cast<double>(stats.degraded) / total
                                : 0;
  row.read_epoch_frac =
      total > 0 ? static_cast<double>(stats.read_epoch) / total : 0;
  return row;
}

/// One overload point: `clients` threads hammer TrySubmit against a
/// tiny queue; refused queries are shed (counted, not retried) — the
/// load-shedding curve.
ServeRow RunOverload(const std::string& index_id, const Column& column,
                     const std::vector<RangeQuery>& queries, size_t clients,
                     size_t per_client) {
  auto index = MakeIndex(index_id, column, BudgetSpec::FixedDelta(0.05));
  serve::ServerConfig config;
  config.queue_capacity = 2;
  config.batch_size = 2;
  serve::Server server(index.get(), column, config);
  std::vector<std::thread> threads;
  Timer timer;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Response resp;
      for (size_t i = 0; i < per_client; ++i) {
        const RangeQuery& q = queries[(c * per_client + i) % queries.size()];
        server.TrySubmit(q, &resp);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = timer.ElapsedSeconds();
  const serve::ServeStats stats = server.stats();

  ServeRow row;
  row.index_id = index_id;
  row.mode = "overload";
  row.clients = clients;
  row.queries = clients * per_client;
  row.queries_per_sec =
      secs > 0 ? static_cast<double>(stats.served + stats.read_epoch) / secs
               : 0;
  const double total = static_cast<double>(stats.submitted);
  row.shed_frac = total > 0 ? static_cast<double>(stats.shed) / total : 0;
  row.degraded_frac = total > 0 ? static_cast<double>(stats.degraded) / total
                                : 0;
  row.read_epoch_frac =
      total > 0 ? static_cast<double>(stats.read_epoch) / total : 0;
  return row;
}

void PrintRows(const std::vector<ServeRow>& rows) {
  std::printf("%-6s %-10s %8s %8s %12s %9s %9s %6s %9s %6s\n", "index",
              "mode", "clients", "queries", "q/s", "p50us", "p99us", "shed",
              "degraded", "read");
  for (const ServeRow& r : rows) {
    std::printf("%-6s %-10s %8zu %8zu %12.1f %9.1f %9.1f %5.1f%% %8.1f%% "
                "%5.1f%%\n",
                r.index_id.c_str(), r.mode.c_str(), r.clients, r.queries,
                r.queries_per_sec, r.p50_us, r.p99_us, r.shed_frac * 100,
                r.degraded_frac * 100, r.read_epoch_frac * 100);
  }
}

/// Merges the `serving` rows into BENCH_kernels.json; every section
/// this tool does not own passes through untouched.
void WriteServingJson(const char* path, const std::vector<ServeRow>& rows) {
  std::vector<bench::JsonSection> sections = bench::ReadJsonSections(path);
  std::string raw = "[\n";
  for (size_t i = 0; i < rows.size(); i++) {
    const ServeRow& r = rows[i];
    bench::AppendF(
        &raw,
        "    {\"index\": \"%s\", \"mode\": \"%s\", \"clients\": %zu, "
        "\"queries\": %zu, \"queries_per_sec\": %.1f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f, \"shed_frac\": %.4f, \"degraded_frac\": %.4f, "
        "\"read_epoch_frac\": %.4f}%s\n",
        r.index_id.c_str(), r.mode.c_str(), r.clients, r.queries,
        r.queries_per_sec, r.p50_us, r.p99_us, r.shed_frac, r.degraded_frac,
        r.read_epoch_frac, i + 1 < rows.size() ? "," : "");
  }
  raw += "  ]";
  bench::UpsertJsonSection(&sections, "serving", std::move(raw));
  if (!bench::WriteJsonSections(path, sections)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::printf("serving rows -> %s\n", path);
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) {
  using namespace progidx;
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  cli.AddFlag("json", "BENCH_kernels.json", "merged JSON output path");
  cli.AddFlag("index", "pq", "index id served (see eval/registry.h)");
  cli.AddFlag("per-client", "400", "blocking submits per client thread");
  if (!cli.Parse(argc, argv)) return 0;
  const size_t n = static_cast<size_t>(
      cli.GetIntInRange("n", 1, static_cast<int64_t>(1) << 32));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed"));
  const size_t per_client = static_cast<size_t>(
      cli.GetIntInRange("per-client", 1, 1 << 24));
  const std::string index_id = cli.GetString("index");

  const Column column = MakeUniformColumn(n, seed);
  const std::vector<RangeQuery> queries = WorkloadGenerator::Generate(
      WorkloadPattern::kRandom, column.min_value(), column.max_value(),
      4096, 0.05, seed + 13);

  // PROGIDX_CLIENTS pins the sweep to one client count.
  const size_t forced = env::BoundedSizeFromEnv(
      "PROGIDX_CLIENTS", 1, 64, 0, "client thread count", "full 1/2/4/8 sweep");
  std::vector<size_t> client_counts = {1, 2, 4, 8};
  if (forced != 0) client_counts = {forced};

  const serve::ServerConfig config = serve::ServerConfig::FromEnv();
  std::vector<ServeRow> rows;
  std::printf("serving %s, n=%zu, %zu submits/client:\n", index_id.c_str(), n,
              per_client);
  for (const size_t clients : client_counts) {
    rows.push_back(RunThroughput(index_id, column, queries, clients,
                                 per_client, config));
  }
  for (const size_t clients : client_counts) {
    rows.push_back(RunOverload(index_id, column, queries, clients,
                               per_client));
  }
  PrintRows(rows);
  WriteServingJson(cli.GetString("json").c_str(), rows);
  return 0;
}
