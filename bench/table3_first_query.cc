// Table 3: first-query cost over the synthetic grid (uniform, skewed,
// point-query, large blocks x workload patterns) for PQ, PB, PLSD,
// PMSD vs Adaptive Adaptive. Expected shape: all progressive
// techniques ~1.2x scan; AA roughly an order of magnitude higher.

#include "bench/bench_util.h"
#include "eval/report.h"

namespace progidx {
namespace {

int Run(int argc, char** argv) {
  CommandLine cli;
  bench::AddCommonFlags(&cli);
  if (!cli.Parse(argc, argv)) return 0;

  std::printf("=== Table 3: first query cost (s) ===\n");
  std::vector<bench::GridCase> grid = bench::MakeSyntheticGrid(cli);
  std::vector<std::string> headers = {"block", "workload"};
  for (const std::string& id : bench::GridIndexIds()) headers.push_back(id);
  TableReport report(headers);
  for (const bench::GridCase& c : grid) {
    std::vector<std::string> row = {c.block, WorkloadPatternName(c.pattern)};
    for (const std::string& id : bench::GridIndexIds()) {
      auto index = MakeIndex(id, c.column, BudgetSpec::Adaptive(0.2));
      const Metrics metrics = RunWorkload(index.get(), c.queries);
      row.push_back(TableReport::FormatSecs(metrics.FirstQuerySecs()));
    }
    report.AddRow(std::move(row));
  }
  report.Print();
  const std::string csv = cli.GetString("csv");
  if (!csv.empty()) report.WriteCsv(csv);
  return 0;
}

}  // namespace
}  // namespace progidx

int main(int argc, char** argv) { return progidx::Run(argc, argv); }
