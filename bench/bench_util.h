#ifndef PROGIDX_BENCH_BENCH_UTIL_H_
#define PROGIDX_BENCH_BENCH_UTIL_H_

// Shared setup for the table/figure reproduction drivers.
//
// Scaling note (DESIGN.md §3): the paper runs 10^8–6·10^9 rows and up
// to 10^6 queries on a 256 GB Xeon; these drivers default to
// container-friendly sizes and accept --n / --queries to scale up. The
// comparisons of interest (who wins, by what factor, where crossovers
// happen) are size-stable.

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/types.h"
#include "cost/calibration.h"
#include "eval/experiment.h"
#include "eval/registry.h"
#include "obs/metrics.h"
#include "workload/data_generator.h"
#include "workload/skyserver.h"
#include "workload/synthetic.h"

namespace progidx {
namespace bench {

/// Latency accumulator for bench drivers, backed by the same
/// log-bucketed histogram the metrics registry shards
/// (obs::LocalHistogram) — so a p99 printed by a bench and a p99
/// exposed by serve::Server::DumpMetrics are the same function of the
/// same buckets, instead of a sort-and-index percentile here and a
/// bucket upper bound there. Single-threaded; give each worker its own
/// recorder and MergeFrom() them (the merge is exact).
class LatencyRecorder {
 public:
  void RecordNs(uint64_t ns) { hist_.Record(ns); }
  void RecordSecs(double secs) {
    hist_.Record(secs <= 0 ? 0 : static_cast<uint64_t>(secs * 1e9 + 0.5));
  }
  void MergeFrom(const LatencyRecorder& other) { hist_.MergeFrom(other.hist_); }

  uint64_t count() const { return hist_.total(); }
  double MeanUs() const { return hist_.Mean() / 1e3; }
  /// Quantile in microseconds: the upper bound of the first bucket
  /// whose cumulative count reaches q * total (obs::Buckets layout,
  /// relative error <= ~3.1%).
  double PercentileUs(double q) const {
    return static_cast<double>(hist_.ValueAtQuantile(q)) / 1e3;
  }

 private:
  obs::LocalHistogram hist_;
};

inline void AddCommonFlags(CommandLine* cli) {
  cli->AddFlag("n", "1000000", "column size");
  cli->AddFlag("queries", "1000", "number of queries");
  cli->AddFlag("seed", "42", "RNG seed");
  cli->AddFlag("csv", "", "optional CSV output path");
}

struct SkyServerBench {
  Column column;
  std::vector<RangeQuery> queries;
};

inline SkyServerBench MakeSkyServerBench(const CommandLine& cli) {
  const size_t n = static_cast<size_t>(cli.GetInt("n"));
  const size_t q = static_cast<size_t>(cli.GetInt("queries"));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed"));
  SkyServerBench bench;
  bench.column = MakeSkyServerColumn(n, seed);
  bench.queries = MakeSkyServerWorkload(q, seed + 1);
  return bench;
}

/// Full-scan seconds for the current machine and column size, the
/// reference cost used for pay-off and the "1.2x scan" budget lines.
inline double MeasuredScanSecs(const Column& column) {
  const MachineConstants& mc = GlobalMachineConstants();
  return mc.seq_read_secs * static_cast<double>(column.size());
}

// ---- Synthetic grid shared by Tables 3/4/5 --------------------------------

/// One block row of Tables 3–5: a data set + query type + pattern.
struct GridCase {
  std::string block;        ///< "UniformRandom", "Skewed", "PointQuery", "Large"
  WorkloadPattern pattern;
  Column column;
  std::vector<RangeQuery> queries;
};

/// Builds the four experiment blocks of §4.4 ("Synthetic Workloads"),
/// scaled by --n/--queries. Point-query rows reuse the range patterns'
/// positions but collapse every range to its midpoint.
inline std::vector<GridCase> MakeSyntheticGrid(const CommandLine& cli) {
  const size_t n = static_cast<size_t>(cli.GetInt("n"));
  const size_t q = static_cast<size_t>(cli.GetInt("queries"));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed"));
  const double selectivity = 0.1;  // §4.1

  const std::vector<WorkloadPattern> range_patterns = {
      WorkloadPattern::kSeqOver,   WorkloadPattern::kZoomOutAlt,
      WorkloadPattern::kSkew,      WorkloadPattern::kRandom,
      WorkloadPattern::kSeqZoomIn, WorkloadPattern::kPeriodic,
      WorkloadPattern::kZoomInAlt, WorkloadPattern::kZoomIn};
  const std::vector<WorkloadPattern> point_patterns = {
      WorkloadPattern::kSeqOver, WorkloadPattern::kZoomOutAlt,
      WorkloadPattern::kSkew,    WorkloadPattern::kRandom,
      WorkloadPattern::kPeriodic, WorkloadPattern::kZoomInAlt};
  const std::vector<WorkloadPattern> large_patterns = {
      WorkloadPattern::kSeqOver, WorkloadPattern::kSkew,
      WorkloadPattern::kRandom};

  std::vector<GridCase> grid;
  auto add_block = [&](const std::string& block, Column column,
                       const std::vector<WorkloadPattern>& patterns,
                       bool points) {
    for (const WorkloadPattern pattern : patterns) {
      GridCase c;
      c.block = block;
      c.pattern = pattern;
      // Re-generate the column per case (Column is move-only and each
      // case owns its data so cases stay independent).
      c.column = Column(column.values());
      c.queries = WorkloadGenerator::Generate(
          pattern, c.column.min_value(), c.column.max_value(), q,
          selectivity, seed + 13);
      if (points) {
        for (RangeQuery& query : c.queries) {
          const value_t mid = query.low + (query.high - query.low) / 2;
          query = RangeQuery{mid, mid};
        }
      }
      grid.push_back(std::move(c));
    }
  };

  add_block("UniformRandom", MakeUniformColumn(n, seed), range_patterns,
            false);
  add_block("Skewed", MakeSkewedColumn(n, seed), range_patterns, false);
  add_block("PointQuery", MakeUniformColumn(n, seed), point_patterns, true);
  add_block("Large(4x)", MakeUniformColumn(4 * n, seed), large_patterns,
            false);
  return grid;
}

/// Algorithms compared in Tables 3–5 (the best adaptive technique, AA,
/// plus the four progressive ones).
inline std::vector<std::string> GridIndexIds() {
  return {"pq", "pb", "plsd", "pmsd", "aa"};
}

}  // namespace bench
}  // namespace progidx

#endif  // PROGIDX_BENCH_BENCH_UTIL_H_
